//! The abort-reason taxonomy shared by MILANA, Centiman, and SEMEL.
//!
//! Every layer maps its local failure type onto [`AbortClass`], so the
//! experiment harnesses can break aborts down uniformly — the lever the
//! paper's Figures 6–9 turn on (which clock skew, which validation path
//! caused each abort).

use std::cell::RefCell;
use std::rc::Rc;

use crate::json::Json;

/// Why a transaction attempt failed, normalized across subsystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbortClass {
    /// Remote validation rejected the read set (Algorithm 1 conflict —
    /// a concurrent commit stamped a newer version inside the snapshot).
    Validation,
    /// Local validation saw a prepared version in the read set (§4.3).
    PreparedRead,
    /// A single-version backend lost the snapshot the reader needed.
    SnapshotUnavailable,
    /// A 2PC participant was unreachable and the coordinator aborted.
    ParticipantUnreachable,
    /// The watermark passed the transaction's begin timestamp (Centiman's
    /// stale-snapshot rule).
    WatermarkStale,
    /// The application explicitly aborted.
    UserRequested,
    /// Transport timeout / unknown outcome (resolved later by CTP).
    UnknownOutcome,
    /// The driver gave up after `max_retries` attempts.
    Abandoned,
    /// A server shed the request under overload (loadkit admission control
    /// or deadline expiry) and the client exhausted its retry allowance.
    Shed,
    /// The client routed a request using a shard map older than the
    /// server's — the key moved to another owner in a newer epoch. The
    /// client must refetch the map and retry against the new owner.
    StaleEpoch,
    /// The server's clock-health tracker judged the client's `ts_commit`
    /// inconsistent with its own clock beyond the promised uncertainty
    /// bound ε — a definite no-vote, not a validation conflict.
    ClockSuspect,
}

impl AbortClass {
    /// Every class, in the canonical (serialization) order.
    pub const ALL: [AbortClass; 11] = [
        AbortClass::Validation,
        AbortClass::PreparedRead,
        AbortClass::SnapshotUnavailable,
        AbortClass::ParticipantUnreachable,
        AbortClass::WatermarkStale,
        AbortClass::UserRequested,
        AbortClass::UnknownOutcome,
        AbortClass::Abandoned,
        AbortClass::Shed,
        AbortClass::StaleEpoch,
        AbortClass::ClockSuspect,
    ];

    /// Stable machine-readable name (used as JSON keys).
    pub fn as_str(self) -> &'static str {
        match self {
            AbortClass::Validation => "validation",
            AbortClass::PreparedRead => "prepared_read",
            AbortClass::SnapshotUnavailable => "snapshot_unavailable",
            AbortClass::ParticipantUnreachable => "participant_unreachable",
            AbortClass::WatermarkStale => "watermark_stale",
            AbortClass::UserRequested => "user_requested",
            AbortClass::UnknownOutcome => "unknown_outcome",
            AbortClass::Abandoned => "abandoned",
            AbortClass::Shed => "shed",
            AbortClass::StaleEpoch => "stale_epoch",
            AbortClass::ClockSuspect => "clock_suspect",
        }
    }

    fn index(self) -> usize {
        AbortClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("in ALL")
    }
}

impl std::fmt::Display for AbortClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-class abort counters. Cloning shares the counts.
#[derive(Debug, Clone, Default)]
pub struct AbortBreakdown {
    counts: Rc<RefCell<[u64; AbortClass::ALL.len()]>>,
}

impl AbortBreakdown {
    /// An empty breakdown.
    pub fn new() -> AbortBreakdown {
        AbortBreakdown::default()
    }

    /// Counts one abort of `class`.
    pub fn record(&self, class: AbortClass) {
        self.counts.borrow_mut()[class.index()] += 1;
    }

    /// Count for one class.
    pub fn get(&self, class: AbortClass) -> u64 {
        self.counts.borrow()[class.index()]
    }

    /// Total aborts across all classes.
    pub fn total(&self) -> u64 {
        self.counts.borrow().iter().sum()
    }

    /// A plain copy of the per-class counts, indexed like
    /// [`AbortClass::ALL`] (the `Send` snapshot worker threads hand back
    /// to the merge step).
    pub fn snapshot(&self) -> [u64; AbortClass::ALL.len()] {
        *self.counts.borrow()
    }

    /// Adds another breakdown's counts into this one.
    pub fn merge_from(&self, other: &AbortBreakdown) {
        self.merge_counts(&other.counts.borrow());
    }

    /// Adds a plain count array (a [`AbortBreakdown::snapshot`]) into
    /// this one — the re-inflation half of the worker-thread handoff.
    pub fn merge_counts(&self, other: &[u64; AbortClass::ALL.len()]) {
        let mut mine = self.counts.borrow_mut();
        for (a, b) in mine.iter_mut().zip(other) {
            *a += b;
        }
    }

    /// Deterministic JSON object: every class in canonical order (zero
    /// counts included, so schemas are stable run to run).
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        for class in AbortClass::ALL {
            doc = doc.field(class.as_str(), Json::U64(self.get(class)));
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_total() {
        let b = AbortBreakdown::new();
        b.record(AbortClass::Validation);
        b.record(AbortClass::Validation);
        b.record(AbortClass::PreparedRead);
        assert_eq!(b.get(AbortClass::Validation), 2);
        assert_eq!(b.get(AbortClass::PreparedRead), 1);
        assert_eq!(b.get(AbortClass::Abandoned), 0);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn merge_adds_per_class() {
        let a = AbortBreakdown::new();
        let b = AbortBreakdown::new();
        a.record(AbortClass::Validation);
        b.record(AbortClass::Validation);
        b.record(AbortClass::UnknownOutcome);
        a.merge_from(&b);
        assert_eq!(a.get(AbortClass::Validation), 2);
        assert_eq!(a.get(AbortClass::UnknownOutcome), 1);
    }

    #[test]
    fn json_has_every_class_in_order() {
        let b = AbortBreakdown::new();
        b.record(AbortClass::WatermarkStale);
        let s = b.to_json().to_string();
        assert_eq!(
            s,
            r#"{"validation":0,"prepared_read":0,"snapshot_unavailable":0,"participant_unreachable":0,"watermark_stale":1,"user_requested":0,"unknown_outcome":0,"abandoned":0,"shed":0,"stale_epoch":0,"clock_suspect":0}"#
        );
    }

    #[test]
    fn clones_share_counts() {
        let a = AbortBreakdown::new();
        let b = a.clone();
        b.record(AbortClass::Abandoned);
        assert_eq!(a.get(AbortClass::Abandoned), 1);
    }
}
