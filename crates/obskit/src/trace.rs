//! Structured trace events with virtual timestamps, recorded into a
//! bounded ring buffer and exported as JSON lines.
//!
//! Tracing is **off by default** ([`Tracer::disabled`] is `Default`) so the
//! hot path pays one branch; harnesses that want event dumps construct the
//! cluster with an enabled tracer. When the ring fills, the oldest events
//! are dropped and counted — the export records how many, so a truncated
//! trace is never mistaken for a complete one.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::abort::AbortClass;
use crate::json::Json;

/// The kind of flash operation a device performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashOpKind {
    /// Page read.
    Read,
    /// Page program.
    Write,
    /// Block erase.
    Erase,
}

impl FlashOpKind {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            FlashOpKind::Read => "read",
            FlashOpKind::Write => "write",
            FlashOpKind::Erase => "erase",
        }
    }
}

/// Why a server refused to do work (the loadkit shed taxonomy, mirrored
/// here so the trace schema stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was at capacity.
    Overloaded,
    /// The request's deadline had already expired on arrival.
    DeadlineExceeded,
}

impl ShedReason {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::Overloaded => "overloaded",
            ShedReason::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

/// Why a batcher flushed its pending items (the batchkit flush taxonomy,
/// mirrored here so the trace schema stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The batch reached its size cap (`batch_max`).
    Size,
    /// The flush deadline expired first (`batch_deadline`).
    Deadline,
    /// An explicit kick (shutdown, test harness).
    Manual,
}

impl FlushReason {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            FlushReason::Size => "size",
            FlushReason::Deadline => "deadline",
            FlushReason::Manual => "manual",
        }
    }
}

/// A shard-migration phase (the shardkit state machine, mirrored here so
/// the trace schema stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Destination group provisioned, epoch bumped, map marked migrating.
    Prepare,
    /// Bulk copy of version-stamped records below the frozen watermark.
    Copy,
    /// Writes at or above the watermark dual-applied at source and dest.
    CatchUp,
    /// Map flipped; source fences moved keys and serves forwarding stubs.
    Cutover,
    /// Source garbage-collected the moved keys.
    Done,
}

impl MigrationPhase {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            MigrationPhase::Prepare => "prepare",
            MigrationPhase::Copy => "copy",
            MigrationPhase::CatchUp => "catch_up",
            MigrationPhase::Cutover => "cutover",
            MigrationPhase::Done => "done",
        }
    }
}

/// A cold-restart recovery phase (the recoverkit state machine, mirrored
/// here so the trace schema stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// Power failed: volatile state lost, in-flight programs torn.
    PowerFail,
    /// Mount scan over the durable medium started.
    MountStart,
    /// Mount scan finished; mapping table and floor recovered.
    MountDone,
    /// Anti-entropy catch-up from the current primary is running.
    CatchUp,
    /// Replica is caught up and serving again.
    Serving,
}

impl RecoveryPhase {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryPhase::PowerFail => "power_fail",
            RecoveryPhase::MountStart => "mount_start",
            RecoveryPhase::MountDone => "mount_done",
            RecoveryPhase::CatchUp => "catch_up",
            RecoveryPhase::Serving => "serving",
        }
    }
}

/// One structured event. Identities are plain integers so `obskit` stays
/// dependency-free: transaction ids are `(client, seq)` pairs, nodes and
/// shards are their numeric ids, and keys are reported as their `u64` id
/// (or a hash where no id exists).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A client began a transaction at `ts_begin`.
    TxnBegin {
        /// Coordinating client id.
        client: u64,
        /// Transaction begin timestamp (client clock, ns).
        ts_begin: u64,
    },
    /// A transactional read was served.
    TxnRead {
        /// Coordinating client id.
        client: u64,
        /// The key read.
        key: u64,
        /// True when the visible version carried the prepared flag.
        prepared: bool,
        /// Commit timestamp of the version observed (ns).
        ver_ts: u64,
        /// Client id of the writer that installed the observed version.
        ver_client: u64,
    },
    /// A buffered write declared just before 2PC prepare fan-out, so the
    /// write set of an unknown-outcome transaction is still recoverable
    /// from the trace.
    TxnWrite {
        /// Coordinating client id.
        client: u64,
        /// The key written.
        key: u64,
    },
    /// A read-only transaction was decided by client-local validation.
    ValidateLocal {
        /// Coordinating client id.
        client: u64,
        /// True = committed, false = aborted (prepared version seen).
        ok: bool,
    },
    /// A transaction entered remote validation (2PC prepare fan-out).
    ValidateRemote {
        /// Coordinating client id.
        client: u64,
        /// Number of participant shards.
        participants: u64,
    },
    /// One participant's prepare vote.
    PrepareVote {
        /// Shard that voted.
        shard: u64,
        /// True = yes vote.
        ok: bool,
    },
    /// A transaction committed.
    Commit {
        /// Coordinating client id.
        client: u64,
        /// Commit timestamp (ns); begin timestamp for read-only commits.
        ts_commit: u64,
        /// True when decided locally (no server round trips).
        local: bool,
    },
    /// A transaction attempt aborted.
    Abort {
        /// Coordinating client id.
        client: u64,
        /// Normalized abort reason.
        reason: AbortClass,
    },
    /// A replica acknowledged a replicated record.
    ReplicaAck {
        /// Acknowledging node id.
        node: u64,
        /// Replication sequence number acknowledged.
        seq: u64,
    },
    /// A garbage-collection pass ran.
    GcRun {
        /// Node the GC ran on.
        node: u64,
        /// Versions reclaimed by this pass.
        reclaimed: u64,
    },
    /// A flash device executed an operation.
    FlashOp {
        /// Device node id.
        node: u64,
        /// Operation kind.
        op: FlashOpKind,
    },
    /// A client clock resynchronized.
    ClockSync {
        /// Clock owner (client id).
        client: u64,
        /// New offset from true time, ns.
        offset_ns: i64,
    },
    /// A server's clock-health tracker flagged a client's prepare timestamp
    /// as inconsistent with its own clock (and possibly fenced the client).
    ClockFence {
        /// The suspected client id.
        client: u64,
        /// Observed timestamp-vs-arrival residual, ns.
        residual_ns: i64,
        /// The uncertainty bound ε the residual was judged against, ns.
        epsilon_ns: u64,
        /// Whether the client is now fenced (persistent outlier).
        fenced: bool,
    },
    /// A server refused a request instead of doing the work.
    Shed {
        /// Shedding node id.
        node: u64,
        /// Why the request was refused.
        reason: ShedReason,
    },
    /// An admission queue's in-flight cost reached a new high-water mark
    /// (emitted on advance and on shed, not per admit, to bound volume).
    QueueDepth {
        /// Owning node id.
        node: u64,
        /// In-flight admitted cost at the sample point.
        cost: u64,
        /// Configured cost capacity.
        capacity: u64,
    },
    /// A client wanted to retry but its retry budget was empty.
    RetryBudgetExhausted {
        /// Coordinating client id.
        client: u64,
    },
    /// A batcher flushed its accumulated items in one envelope.
    BatchFlush {
        /// Node the batcher runs on.
        node: u64,
        /// Items coalesced into the envelope.
        size: u64,
        /// What triggered the flush.
        reason: FlushReason,
    },
    /// The master promoted a backup to primary after a missed heartbeat.
    MasterFailover {
        /// The shard that failed over.
        shard: u64,
        /// Node id of the newly promoted primary.
        new_primary: u64,
        /// Map epoch after the promotion.
        epoch: u64,
    },
    /// The master installed a new shard map (rebalance, not failover).
    MapInstall {
        /// Map epoch after the install.
        epoch: u64,
        /// Number of shards in the installed map.
        shards: u64,
    },
    /// A shard migration entered a new phase.
    MigrationStep {
        /// Rebalance plan id.
        plan: u64,
        /// The phase entered.
        phase: MigrationPhase,
        /// Source shard id.
        from: u64,
        /// Destination shard id.
        to: u64,
        /// Map epoch when the phase was entered.
        epoch: u64,
    },
    /// A batch of version-stamped records was copied to the destination.
    MigrationCopy {
        /// Rebalance plan id.
        plan: u64,
        /// Records in the batch.
        records: u64,
        /// Payload bytes in the batch (keys + values).
        bytes: u64,
    },
    /// A node asserted ownership of a shard at an epoch (primary serving).
    ShardOwned {
        /// The shard.
        shard: u64,
        /// Map epoch of the claim.
        epoch: u64,
        /// Claiming node id.
        owner: u64,
    },
    /// A node released ownership of a shard (fenced / cut over).
    ShardReleased {
        /// The shard.
        shard: u64,
        /// Map epoch at release time.
        epoch: u64,
        /// Releasing node id.
        owner: u64,
    },
    /// A snapshot read was served by a *backup* replica (readkit). The
    /// carried watermark is the replica's applied watermark at serve
    /// time; the checker's `stale_backup_read` invariant requires
    /// `watermark >= ts_begin` on every such event.
    ReadServed {
        /// Serving replica's node id.
        replica: u64,
        /// The replica's applied watermark (ns).
        watermark: u64,
        /// The snapshot timestamp served (ns).
        ts_begin: u64,
    },
    /// A cold-restarting replica entered a recovery phase. `detail` is
    /// phase-specific: torn pages for `mount_done`, keys fetched for
    /// `catch_up`, the recovered floor (ns) for `serving`, else 0.
    RecoveryStep {
        /// Recovering replica's node id.
        node: u64,
        /// Shard the replica belongs to.
        shard: u64,
        /// The phase entered.
        phase: RecoveryPhase,
        /// Phase-specific detail value (see above).
        detail: u64,
    },
}

impl TraceEvent {
    /// Stable event-type name (the `"ev"` JSON field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::TxnBegin { .. } => "txn_begin",
            TraceEvent::TxnRead { .. } => "txn_read",
            TraceEvent::TxnWrite { .. } => "txn_write",
            TraceEvent::ValidateLocal { .. } => "validate_local",
            TraceEvent::ValidateRemote { .. } => "validate_remote",
            TraceEvent::PrepareVote { .. } => "prepare_vote",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::Abort { .. } => "abort",
            TraceEvent::ReplicaAck { .. } => "replica_ack",
            TraceEvent::GcRun { .. } => "gc_run",
            TraceEvent::FlashOp { .. } => "flash_op",
            TraceEvent::ClockSync { .. } => "clock_sync",
            TraceEvent::ClockFence { .. } => "clock_fence",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::QueueDepth { .. } => "queue_depth",
            TraceEvent::RetryBudgetExhausted { .. } => "retry_budget_exhausted",
            TraceEvent::BatchFlush { .. } => "batch_flush",
            TraceEvent::MasterFailover { .. } => "master_failover",
            TraceEvent::MapInstall { .. } => "map_install",
            TraceEvent::MigrationStep { .. } => "migration_step",
            TraceEvent::MigrationCopy { .. } => "migration_copy",
            TraceEvent::ShardOwned { .. } => "shard_owned",
            TraceEvent::ShardReleased { .. } => "shard_released",
            TraceEvent::ReadServed { .. } => "read_served",
            TraceEvent::RecoveryStep { .. } => "recovery_step",
        }
    }

    fn fields(&self, doc: Json) -> Json {
        match *self {
            TraceEvent::TxnBegin { client, ts_begin } => doc
                .field("client", Json::U64(client))
                .field("ts_begin", Json::U64(ts_begin)),
            TraceEvent::TxnRead {
                client,
                key,
                prepared,
                ver_ts,
                ver_client,
            } => doc
                .field("client", Json::U64(client))
                .field("key", Json::U64(key))
                .field("prepared", Json::Bool(prepared))
                .field("ver_ts", Json::U64(ver_ts))
                .field("ver_client", Json::U64(ver_client)),
            TraceEvent::TxnWrite { client, key } => doc
                .field("client", Json::U64(client))
                .field("key", Json::U64(key)),
            TraceEvent::ValidateLocal { client, ok } => doc
                .field("client", Json::U64(client))
                .field("ok", Json::Bool(ok)),
            TraceEvent::ValidateRemote {
                client,
                participants,
            } => doc
                .field("client", Json::U64(client))
                .field("participants", Json::U64(participants)),
            TraceEvent::PrepareVote { shard, ok } => doc
                .field("shard", Json::U64(shard))
                .field("ok", Json::Bool(ok)),
            TraceEvent::Commit {
                client,
                ts_commit,
                local,
            } => doc
                .field("client", Json::U64(client))
                .field("ts_commit", Json::U64(ts_commit))
                .field("local", Json::Bool(local)),
            TraceEvent::Abort { client, reason } => doc
                .field("client", Json::U64(client))
                .field("reason", Json::str(reason.as_str())),
            TraceEvent::ReplicaAck { node, seq } => doc
                .field("node", Json::U64(node))
                .field("seq", Json::U64(seq)),
            TraceEvent::GcRun { node, reclaimed } => doc
                .field("node", Json::U64(node))
                .field("reclaimed", Json::U64(reclaimed)),
            TraceEvent::FlashOp { node, op } => doc
                .field("node", Json::U64(node))
                .field("op", Json::str(op.as_str())),
            TraceEvent::ClockSync { client, offset_ns } => doc
                .field("client", Json::U64(client))
                .field("offset_ns", Json::I64(offset_ns)),
            TraceEvent::ClockFence {
                client,
                residual_ns,
                epsilon_ns,
                fenced,
            } => doc
                .field("client", Json::U64(client))
                .field("residual_ns", Json::I64(residual_ns))
                .field("epsilon_ns", Json::U64(epsilon_ns))
                .field("fenced", Json::Bool(fenced)),
            TraceEvent::Shed { node, reason } => doc
                .field("node", Json::U64(node))
                .field("reason", Json::str(reason.as_str())),
            TraceEvent::QueueDepth {
                node,
                cost,
                capacity,
            } => doc
                .field("node", Json::U64(node))
                .field("cost", Json::U64(cost))
                .field("capacity", Json::U64(capacity)),
            TraceEvent::RetryBudgetExhausted { client } => doc.field("client", Json::U64(client)),
            TraceEvent::BatchFlush { node, size, reason } => doc
                .field("node", Json::U64(node))
                .field("size", Json::U64(size))
                .field("reason", Json::str(reason.as_str())),
            TraceEvent::MasterFailover {
                shard,
                new_primary,
                epoch,
            } => doc
                .field("shard", Json::U64(shard))
                .field("new_primary", Json::U64(new_primary))
                .field("epoch", Json::U64(epoch)),
            TraceEvent::MapInstall { epoch, shards } => doc
                .field("epoch", Json::U64(epoch))
                .field("shards", Json::U64(shards)),
            TraceEvent::MigrationStep {
                plan,
                phase,
                from,
                to,
                epoch,
            } => doc
                .field("plan", Json::U64(plan))
                .field("phase", Json::str(phase.as_str()))
                .field("from", Json::U64(from))
                .field("to", Json::U64(to))
                .field("epoch", Json::U64(epoch)),
            TraceEvent::MigrationCopy {
                plan,
                records,
                bytes,
            } => doc
                .field("plan", Json::U64(plan))
                .field("records", Json::U64(records))
                .field("bytes", Json::U64(bytes)),
            TraceEvent::ShardOwned {
                shard,
                epoch,
                owner,
            } => doc
                .field("shard", Json::U64(shard))
                .field("epoch", Json::U64(epoch))
                .field("owner", Json::U64(owner)),
            TraceEvent::ShardReleased {
                shard,
                epoch,
                owner,
            } => doc
                .field("shard", Json::U64(shard))
                .field("epoch", Json::U64(epoch))
                .field("owner", Json::U64(owner)),
            TraceEvent::ReadServed {
                replica,
                watermark,
                ts_begin,
            } => doc
                .field("replica", Json::U64(replica))
                .field("watermark", Json::U64(watermark))
                .field("ts_begin", Json::U64(ts_begin)),
            TraceEvent::RecoveryStep {
                node,
                shard,
                phase,
                detail,
            } => doc
                .field("node", Json::U64(node))
                .field("shard", Json::U64(shard))
                .field("phase", Json::str(phase.as_str()))
                .field("detail", Json::U64(detail)),
        }
    }

    /// The event as a JSON object with its virtual timestamp.
    pub fn to_json(&self, at_ns: u64) -> Json {
        self.fields(
            Json::obj()
                .field("at_ns", Json::U64(at_ns))
                .field("ev", Json::str(self.name())),
        )
    }
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<(u64, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

/// A shared handle to the trace ring buffer. Cloning shares the buffer;
/// the disabled tracer records nothing at near-zero cost.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    ring: Option<Rc<RefCell<Ring>>>,
}

impl Tracer {
    /// A tracer that records nothing (the `Default`).
    pub fn disabled() -> Tracer {
        Tracer { ring: None }
    }

    /// A tracer recording into a ring of at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Tracer {
        assert!(capacity > 0, "trace ring needs capacity");
        Tracer {
            ring: Some(Rc::new(RefCell::new(Ring {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
            }))),
        }
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Records `event` at virtual time `at_ns`. No-op when disabled.
    pub fn record(&self, at_ns: u64, event: TraceEvent) {
        let Some(ring) = &self.ring else { return };
        let mut r = ring.borrow_mut();
        if r.events.len() == r.capacity {
            r.events.pop_front();
            r.dropped += 1;
        }
        r.events.push_back((at_ns, event));
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.as_ref().map_or(0, |r| r.borrow().events.len())
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.borrow().dropped)
    }

    /// Events of a given type currently buffered.
    pub fn count_of(&self, name: &str) -> usize {
        self.ring.as_ref().map_or(0, |r| {
            r.borrow()
                .events
                .iter()
                .filter(|(_, e)| e.name() == name)
                .count()
        })
    }

    /// A snapshot of the buffered events, oldest first, each paired with
    /// its virtual timestamp. Used by history checkers that consume the
    /// trace structurally instead of via JSONL.
    pub fn events(&self) -> Vec<(u64, TraceEvent)> {
        self.ring
            .as_ref()
            .map_or_else(Vec::new, |r| r.borrow().events.iter().cloned().collect())
    }

    /// The buffered events as JSON lines (one compact object per line,
    /// oldest first), preceded by a header line recording capacity and
    /// drop count. Byte-stable across same-seed runs.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        let Some(ring) = &self.ring else { return out };
        let r = ring.borrow();
        Json::obj()
            .field("ev", Json::str("trace_header"))
            .field("capacity", Json::U64(r.capacity as u64))
            .field("dropped", Json::U64(r.dropped))
            .field("buffered", Json::U64(r.events.len() as u64))
            .write(&mut out);
        out.push('\n');
        for (at_ns, ev) in &r.events {
            ev.to_json(*at_ns).write(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_a_noop() {
        let t = Tracer::disabled();
        t.record(
            5,
            TraceEvent::GcRun {
                node: 1,
                reclaimed: 2,
            },
        );
        assert!(!t.is_enabled());
        assert_eq!(t.len(), 0);
        assert_eq!(t.dump_jsonl(), "");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::bounded(2);
        for i in 0..5u64 {
            t.record(i, TraceEvent::PrepareVote { shard: i, ok: true });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let dump = t.dump_jsonl();
        assert!(dump.contains(r#""dropped":3"#));
        // Only the two newest survive.
        assert!(dump.contains(r#""shard":3"#) && dump.contains(r#""shard":4"#));
        assert!(!dump.contains(r#""shard":2"#));
    }

    #[test]
    fn jsonl_lines_are_valid_objects_in_order() {
        let t = Tracer::bounded(16);
        t.record(
            10,
            TraceEvent::TxnBegin {
                client: 1,
                ts_begin: 10,
            },
        );
        t.record(
            20,
            TraceEvent::Abort {
                client: 1,
                reason: AbortClass::Validation,
            },
        );
        let dump = t.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[1],
            r#"{"at_ns":10,"ev":"txn_begin","client":1,"ts_begin":10}"#
        );
        assert_eq!(
            lines[2],
            r#"{"at_ns":20,"ev":"abort","client":1,"reason":"validation"}"#
        );
    }

    #[test]
    fn every_event_kind_serializes() {
        let t = Tracer::bounded(32);
        let evs = [
            TraceEvent::TxnBegin {
                client: 1,
                ts_begin: 2,
            },
            TraceEvent::TxnRead {
                client: 1,
                key: 3,
                prepared: false,
                ver_ts: 5,
                ver_client: 2,
            },
            TraceEvent::TxnWrite { client: 1, key: 3 },
            TraceEvent::ValidateLocal {
                client: 1,
                ok: true,
            },
            TraceEvent::ValidateRemote {
                client: 1,
                participants: 2,
            },
            TraceEvent::PrepareVote {
                shard: 0,
                ok: false,
            },
            TraceEvent::Commit {
                client: 1,
                ts_commit: 9,
                local: false,
            },
            TraceEvent::Abort {
                client: 1,
                reason: AbortClass::PreparedRead,
            },
            TraceEvent::ReplicaAck { node: 4, seq: 7 },
            TraceEvent::GcRun {
                node: 4,
                reclaimed: 11,
            },
            TraceEvent::FlashOp {
                node: 4,
                op: FlashOpKind::Erase,
            },
            TraceEvent::ClockSync {
                client: 1,
                offset_ns: -250,
            },
            TraceEvent::ClockFence {
                client: 1,
                residual_ns: 2_000_000,
                epsilon_ns: 500_000,
                fenced: true,
            },
            TraceEvent::Shed {
                node: 4,
                reason: ShedReason::Overloaded,
            },
            TraceEvent::QueueDepth {
                node: 4,
                cost: 12,
                capacity: 16,
            },
            TraceEvent::RetryBudgetExhausted { client: 1 },
            TraceEvent::BatchFlush {
                node: 4,
                size: 8,
                reason: FlushReason::Deadline,
            },
            TraceEvent::MasterFailover {
                shard: 0,
                new_primary: 2,
                epoch: 1,
            },
            TraceEvent::MapInstall {
                epoch: 2,
                shards: 3,
            },
            TraceEvent::MigrationStep {
                plan: 1,
                phase: MigrationPhase::Copy,
                from: 0,
                to: 2,
                epoch: 2,
            },
            TraceEvent::MigrationCopy {
                plan: 1,
                records: 64,
                bytes: 4096,
            },
            TraceEvent::ShardOwned {
                shard: 2,
                epoch: 3,
                owner: 9,
            },
            TraceEvent::ShardReleased {
                shard: 0,
                epoch: 3,
                owner: 0,
            },
            TraceEvent::ReadServed {
                replica: 5,
                watermark: 40,
                ts_begin: 30,
            },
            TraceEvent::RecoveryStep {
                node: 5,
                shard: 1,
                phase: RecoveryPhase::MountDone,
                detail: 2,
            },
        ];
        let n = evs.len();
        for (i, ev) in evs.into_iter().enumerate() {
            t.record(i as u64, ev);
        }
        let dump = t.dump_jsonl();
        assert_eq!(dump.lines().count(), n + 1);
        for name in [
            "txn_begin",
            "txn_read",
            "txn_write",
            "validate_local",
            "validate_remote",
            "prepare_vote",
            "commit",
            "abort",
            "replica_ack",
            "gc_run",
            "flash_op",
            "clock_sync",
            "clock_fence",
            "shed",
            "queue_depth",
            "retry_budget_exhausted",
            "batch_flush",
            "master_failover",
            "map_install",
            "migration_step",
            "migration_copy",
            "shard_owned",
            "shard_released",
            "read_served",
            "recovery_step",
        ] {
            assert!(dump.contains(&format!(r#""ev":"{name}""#)), "{name}");
            assert_eq!(t.count_of(name), 1, "{name}");
        }
    }
}
