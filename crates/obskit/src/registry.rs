//! The hierarchical metric registry: counters, gauges, and histograms
//! addressed by dot-separated names, with cheap cloneable handles.
//!
//! Handles are `Rc`-backed (the simulation is single-threaded and
//! deterministic; atomics would buy nothing and cost determinism review).
//! Registering the same name twice with the same kind returns the *same*
//! underlying metric — components and harnesses can both grab
//! `"milana.client.commits"` and observe one stream. Registering a name
//! under a different kind is a bug and panics.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::hist::Histogram;
use crate::json::Json;

/// A monotonically increasing counter handle. Cloning shares the value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// A counter not attached to any registry.
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A last-value gauge handle. Cloning shares the value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.set(v);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

/// A shared histogram handle. Cloning shares the samples.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Rc<RefCell<Histogram>>);

impl HistogramHandle {
    /// A histogram not attached to any registry.
    pub fn detached() -> HistogramHandle {
        HistogramHandle::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// Merges another histogram's samples into this one.
    pub fn merge_from(&self, other: &Histogram) {
        self.0.borrow_mut().merge(other);
    }

    /// A point-in-time copy of the samples.
    pub fn snapshot(&self) -> Histogram {
        self.0.borrow().clone()
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.borrow().count()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The registry: a sorted map from hierarchical names to metrics.
/// Cloning shares the registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Rc<RefCell<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.borrow_mut();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!(
                "metric name collision: {name:?} is a {}, requested counter",
                other.kind()
            ),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.borrow_mut();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!(
                "metric name collision: {name:?} is a {}, requested gauge",
                other.kind()
            ),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut m = self.metrics.borrow_mut();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(HistogramHandle::default()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!(
                "metric name collision: {name:?} is a {}, requested histogram",
                other.kind()
            ),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.borrow().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.borrow().is_empty()
    }

    /// Deterministic JSON snapshot: names in sorted order; counters and
    /// gauges as integers, histograms as their summary objects.
    pub fn snapshot(&self) -> Json {
        let mut doc = Json::obj();
        for (name, metric) in self.metrics.borrow().iter() {
            let value = match metric {
                Metric::Counter(c) => Json::U64(c.get()),
                Metric::Gauge(g) => Json::I64(g.get()),
                Metric::Histogram(h) => h.snapshot().summary_json(),
            };
            doc = doc.field(name, value);
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_kind_shares_the_metric() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "metric name collision")]
    fn same_name_different_kind_panics() {
        let reg = Registry::new();
        let _c = reg.counter("x.val");
        let _g = reg.gauge("x.val");
    }

    #[test]
    #[should_panic(expected = "metric name collision")]
    fn histogram_vs_counter_collision_panics() {
        let reg = Registry::new();
        let _h = reg.histogram("lat");
        let _c = reg.counter("lat");
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let reg = Registry::new();
        reg.counter("b.count").add(5);
        reg.gauge("a.level").set(-2);
        reg.histogram("c.lat").record(100);
        let s = reg.snapshot().to_string();
        // Sorted: a.level before b.count before c.lat.
        let ia = s.find("a.level").unwrap();
        let ib = s.find("b.count").unwrap();
        let ic = s.find("c.lat").unwrap();
        assert!(ia < ib && ib < ic, "{s}");
        assert!(s.contains(r#""a.level":-2"#));
        assert!(s.contains(r#""b.count":5"#));
        assert!(s.contains(r#""c.lat":{"count":1"#));
    }

    #[test]
    fn clones_share_the_registry() {
        let reg = Registry::new();
        let reg2 = reg.clone();
        reg.counter("shared").inc();
        assert_eq!(reg2.counter("shared").get(), 1);
    }
}
