//! A dependency-free JSON value with **byte-stable** serialization.
//!
//! Export determinism is a contract here: two same-seed runs must produce
//! byte-identical artifacts, so downstream tooling can diff them and CI can
//! assert reproducibility. The rules that guarantee it:
//!
//! - object fields serialize in **insertion order** (and builders insert in
//!   fixed program order), never hash order;
//! - floats use Rust's shortest-roundtrip `Display`, which is
//!   platform-independent; non-finite floats serialize as `null`;
//! - nothing here reads wall-clock time or process state.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized with shortest-roundtrip formatting).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::field on non-object"),
        }
        self
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array from an iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Compact serialization (no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Shortest-roundtrip, deterministic across platforms.
                    // Always keep a decimal point so the value reads back
                    // as a float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty serialization with two-space indentation (still byte-stable).
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Pretty-printed document with a trailing newline (the artifact
    /// format experiments write to disk).
    pub fn to_pretty_string(&self) -> String {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        s.push('\n');
        s
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip_shapes() {
        let doc = Json::obj()
            .field("name", Json::str("fig7"))
            .field("n", Json::U64(3))
            .field("rate", Json::F64(0.25))
            .field("neg", Json::I64(-7))
            .field("ok", Json::Bool(true))
            .field("items", Json::arr([Json::U64(1), Json::U64(2)]))
            .field("none", Json::Null);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"fig7","n":3,"rate":0.25,"neg":-7,"ok":true,"items":[1,2],"none":null}"#
        );
    }

    #[test]
    fn floats_always_read_back_as_floats() {
        assert_eq!(Json::F64(2.0).to_string(), "2.0");
        assert_eq!(Json::F64(0.1).to_string(), "0.1");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
        // Huge magnitudes print as full decimal expansions (Rust's float
        // Display has no scientific form); the text must still round-trip.
        let s = Json::F64(1e300).to_string();
        assert!(s.contains('.'), "{s}");
        assert_eq!(s.trim_end_matches(".0").parse::<f64>().unwrap(), 1e300);
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn field_order_is_insertion_order() {
        let a = Json::obj()
            .field("z", Json::U64(1))
            .field("a", Json::U64(2));
        assert_eq!(a.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_is_stable_and_newline_terminated() {
        let doc = Json::obj().field("a", Json::arr([Json::U64(1)]));
        let s = doc.to_pretty_string();
        assert!(s.ends_with('\n'));
        assert_eq!(s, "{\n  \"a\": [\n    1\n  ]\n}\n");
    }
}
