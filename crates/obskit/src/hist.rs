//! A log-linear histogram (HDR-style, ~1.5 % relative error on
//! percentiles), absorbed from `simkit::metrics` (which re-exports it).

use std::time::Duration;

use crate::json::Json;

const SUB_BITS: u32 = 6; // 64 linear sub-buckets per power of two
const SUB: usize = 1 << SUB_BITS;

/// A fixed-memory histogram of `u64` samples (typically latency
/// nanoseconds).
///
/// Values below 64 are recorded exactly; above that, buckets are log-spaced
/// with 64 linear sub-buckets per octave, bounding relative error to about
/// 1.5 %.
///
/// # Examples
///
/// ```
/// use obskit::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [10, 20, 30, 40, 50] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), 10);
/// assert_eq!(h.max(), 50);
/// assert!((h.mean() - 30.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; SUB + (64 - SUB_BITS as usize) * SUB],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < SUB as u64 {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros(); // >= SUB_BITS
            let octave = (msb - SUB_BITS) as usize;
            let sub = ((value >> (msb - SUB_BITS)) as usize) & (SUB - 1);
            SUB + octave * SUB + sub
        }
    }

    fn bucket_value(idx: usize) -> u64 {
        if idx < SUB {
            idx as u64
        } else {
            let octave = (idx - SUB) / SUB;
            let sub = (idx - SUB) % SUB;
            let base = 1u64 << (octave as u32 + SUB_BITS);
            base + (sub as u64) * (base >> SUB_BITS)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`Duration`] in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of all samples (exact). Zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample. Zero when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate value at quantile `q` in `[0, 1]`. Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// One-line summary: `count / mean / p50 / p99 / max` in microseconds.
    pub fn summary_us(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={:.1}us p99={:.1}us max={:.1}us",
            self.count,
            self.mean() / 1e3,
            self.quantile(0.5) as f64 / 1e3,
            self.quantile(0.99) as f64 / 1e3,
            self.max as f64 / 1e3,
        )
    }

    /// Deterministic JSON summary: count, mean, min/max, and the standard
    /// percentile ladder (p50/p90/p99/p999). Values are raw sample units
    /// (nanoseconds for latency histograms).
    pub fn summary_json(&self) -> Json {
        Json::obj()
            .field("count", Json::U64(self.count))
            .field("mean", Json::F64(self.mean()))
            .field("min", Json::U64(self.min()))
            .field("max", Json::U64(self.max()))
            .field("p50", Json::U64(self.quantile(0.50)))
            .field("p90", Json::U64(self.quantile(0.90)))
            .field("p99", Json::U64(self.quantile(0.99)))
            .field("p999", Json::U64(self.quantile(0.999)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        // Log-uniform samples across a wide range.
        let mut vals = Vec::new();
        let mut x: u64 = 3;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            let v = 100 + (x % 10_000_000);
            vals.push(v);
            h.record(v);
        }
        vals.sort();
        for q in [0.5, 0.9, 0.99] {
            let exact = vals[((q * vals.len() as f64) as usize).min(vals.len() - 1)] as f64;
            let approx = h.quantile(q) as f64;
            let err = (approx - exact).abs() / exact;
            assert!(err < 0.05, "q={q} exact={exact} approx={approx} err={err}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 1_000_000, 123_456_789] {
            h.record(v);
        }
        let expect = (1u64 + 1_000_000 + 123_456_789) as f64 / 3.0;
        assert!((h.mean() - expect).abs() < 1e-6);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        for v in [5u64, 50, 500, 5_000] {
            a.record(v);
        }
        let before = a.summary_json().to_string();
        a.merge(&Histogram::new());
        assert_eq!(a.summary_json().to_string(), before);

        // Empty absorbing non-empty equals the non-empty one.
        let mut e = Histogram::new();
        e.merge(&a);
        assert_eq!(e.summary_json().to_string(), before);
    }

    #[test]
    fn merge_equals_recording_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut u = Histogram::new();
        let mut x: u64 = 17;
        for i in 0..2_000u64 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(i);
            let v = x % 1_000_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary_json().to_string(), u.summary_json().to_string());
    }

    #[test]
    fn quantile_edges_single_sample() {
        let mut h = Histogram::new();
        h.record(1_234_567);
        for q in [0.0, 0.5, 0.999, 1.0] {
            // One sample: every quantile is within bucket error of it, and
            // clamped to [min, max] so it is exactly the sample.
            assert_eq!(h.quantile(q), 1_234_567, "q={q}");
        }
    }

    #[test]
    fn quantile_edges_extreme_values() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.0), 0);
        // The top quantile lands in u64::MAX's bucket; its representative
        // value is within the histogram's ~1.6% relative error.
        let p100 = h.quantile(1.0);
        let err = (u64::MAX as f64 - p100 as f64) / u64::MAX as f64;
        assert!((0.0..0.02).contains(&err), "p100 {p100} err {err}");
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn index_monotonic_in_value() {
        let mut last = 0;
        for v in (0..1_000_000u64).step_by(997) {
            let idx = Histogram::index(v);
            assert!(idx >= last);
            last = idx;
        }
    }

    #[test]
    fn bucket_value_inverts_index_approximately() {
        for v in [0u64, 5, 63, 64, 100, 1000, 65_537, 10_000_000] {
            let idx = Histogram::index(v);
            let rep = Histogram::bucket_value(idx);
            assert!(rep <= v, "rep {rep} > v {v}");
            let next = Histogram::bucket_value(idx + 1);
            assert!(next > v, "next {next} <= v {v}");
        }
    }
}
