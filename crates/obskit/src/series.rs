//! Event counts over fixed virtual-time windows — the throughput
//! time-series the experiment exports plot.

use std::cell::RefCell;
use std::rc::Rc;

use crate::json::Json;

#[derive(Debug)]
struct SeriesInner {
    window_ns: u64,
    counts: Vec<u64>,
}

/// Counts events into `window_ns`-wide buckets of virtual time. Cloning
/// shares the series.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    inner: Rc<RefCell<SeriesInner>>,
}

impl TimeSeries {
    /// A series with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn new(window_ns: u64) -> TimeSeries {
        assert!(window_ns > 0, "time series window must be positive");
        TimeSeries {
            inner: Rc::new(RefCell::new(SeriesInner {
                window_ns,
                counts: Vec::new(),
            })),
        }
    }

    /// Counts one event at virtual time `at_ns`.
    pub fn record(&self, at_ns: u64) {
        let mut s = self.inner.borrow_mut();
        let bucket = (at_ns / s.window_ns) as usize;
        if bucket >= s.counts.len() {
            s.counts.resize(bucket + 1, 0);
        }
        s.counts[bucket] += 1;
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.inner.borrow().counts.iter().sum()
    }

    /// The window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.inner.borrow().window_ns
    }

    /// A plain copy of the per-window counts.
    pub fn counts(&self) -> Vec<u64> {
        self.inner.borrow().counts.clone()
    }

    /// Deterministic JSON: `{"window_ns": ..., "counts": [...]}` with one
    /// entry per window from virtual time zero to the last event.
    pub fn to_json(&self) -> Json {
        let s = self.inner.borrow();
        Json::obj()
            .field("window_ns", Json::U64(s.window_ns))
            .field("counts", Json::arr(s.counts.iter().map(|&c| Json::U64(c))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_window() {
        let s = TimeSeries::new(1_000);
        s.record(0);
        s.record(999);
        s.record(1_000);
        s.record(3_500);
        assert_eq!(s.total(), 4);
        assert_eq!(
            s.to_json().to_string(),
            r#"{"window_ns":1000,"counts":[2,1,0,1]}"#
        );
    }

    #[test]
    fn clones_share() {
        let s = TimeSeries::new(10);
        let s2 = s.clone();
        s2.record(5);
        assert_eq!(s.total(), 1);
    }
}
