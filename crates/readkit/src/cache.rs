//! Client-side cache of immutable versions.
//!
//! A version `(ts, client)` of a key never changes once written — MVCC
//! writes only ever *add* versions — so caching `(key, version) → value`
//! is safe forever. What the cache must get right is *which snapshot* a
//! cached entry may answer: entry `v` answers a read at `at` only if `v`
//! is the newest version at or below `at`. Each entry therefore carries a
//! `known_upper` bound: a server confirmed `v` was the newest version
//! `≤ known_upper`, so any `at` in `[v.ts, known_upper]` is a sound hit.
//! New versions always carry stamps above every replica's applied
//! watermark at write time, so hits at or below the client's observed
//! watermark floor can never be stale; hits above it are validated by OCC
//! like any other read (the caller records the version in the read-set).

use std::collections::BTreeMap;

use perfkit::FastMap;
use std::hash::Hash;

use timesync::{Timestamp, Version};

/// One cached version and the snapshot window it may answer.
#[derive(Debug, Clone)]
pub struct CacheEntry<V> {
    /// The version stamp of the cached value.
    pub version: Version,
    /// The cached value (immutable for this version).
    pub value: V,
    /// Highest `at` for which a server confirmed `version` is the newest
    /// version `≤ at`.
    pub known_upper: Timestamp,
}

/// A bounded LRU of key → newest-known version.
///
/// Capacity 0 disables the cache (lookups miss, inserts drop). Recency is
/// a logical tick; eviction removes the least recently used entry via a
/// `BTreeMap` index, keeping behavior deterministic under simulation.
#[derive(Debug)]
pub struct VersionCache<K: Hash + Eq + Ord + Clone, V> {
    cap: usize,
    tick: u64,
    entries: FastMap<K, (CacheEntry<V>, u64)>,
    lru: BTreeMap<u64, K>,
    hits: u64,
    misses: u64,
}

impl<K: Hash + Eq + Ord + Clone, V> VersionCache<K, V> {
    /// A cache holding at most `cap` entries.
    pub fn new(cap: usize) -> VersionCache<K, V> {
        VersionCache {
            cap,
            tick: 0,
            entries: FastMap::default(),
            lru: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self, key: &K) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, t)) = self.entries.get_mut(key) {
            self.lru.remove(t);
            *t = tick;
            self.lru.insert(tick, key.clone());
        }
    }

    /// Looks up `key` for a snapshot read at `at`; a hit requires
    /// `version.ts ≤ at ≤ known_upper`.
    pub fn lookup(&mut self, key: &K, at: Timestamp) -> Option<&CacheEntry<V>> {
        let hit = match self.entries.get(key) {
            Some((e, _)) => e.version.ts <= at && at <= e.known_upper,
            None => false,
        };
        if !hit {
            self.misses += 1;
            return None;
        }
        self.hits += 1;
        self.touch(key);
        self.entries.get(key).map(|(e, _)| e)
    }

    /// Looks up the newest cached version of `key` with `version.ts ≤ at`,
    /// ignoring the confirmed window — a *speculative* hit. The entry may
    /// have been superseded by a version the client has not seen, so the
    /// caller must validate the returned version remotely (OCC) before
    /// trusting the read.
    pub fn lookup_latest(&mut self, key: &K, at: Timestamp) -> Option<&CacheEntry<V>> {
        let hit = match self.entries.get(key) {
            Some((e, _)) => e.version.ts <= at,
            None => false,
        };
        if !hit {
            self.misses += 1;
            return None;
        }
        self.hits += 1;
        self.touch(key);
        self.entries.get(key).map(|(e, _)| e)
    }

    /// Records that a server confirmed `version` of `key` is the newest
    /// version `≤ known_upper`. Newer versions replace older ones; a
    /// re-confirmation of the cached version only widens its window.
    pub fn insert(&mut self, key: K, version: Version, value: V, known_upper: Timestamp) {
        if self.cap == 0 || known_upper < version.ts {
            return;
        }
        if let Some((e, _)) = self.entries.get_mut(&key) {
            if version > e.version {
                e.version = version;
                e.value = value;
                e.known_upper = known_upper;
            } else if version == e.version {
                e.known_upper = e.known_upper.max(known_upper);
            }
            // An older version teaches us nothing: keep the newer entry.
            self.touch(&key);
            return;
        }
        while self.entries.len() >= self.cap {
            let Some((_, victim)) = self.lru.pop_first() else {
                break;
            };
            self.entries.remove(&victim);
        }
        self.tick += 1;
        self.lru.insert(self.tick, key.clone());
        self.entries.insert(
            key,
            (
                CacheEntry {
                    version,
                    value,
                    known_upper,
                },
                self.tick,
            ),
        );
    }

    /// Drops `key` (used when OCC validation proves the entry stale).
    pub fn remove(&mut self, key: &K) {
        if let Some((_, t)) = self.entries.remove(key) {
            self.lru.remove(&t);
        }
    }

    /// Drops entries whose window lies entirely below `floor` — the
    /// watermark-driven GC invalidation hook. Entries at or above the
    /// floor stay: their versions are still readable on every replica.
    pub fn invalidate_below(&mut self, floor: Timestamp) {
        let dead: Vec<K> = self
            .entries
            .iter()
            .filter(|(_, (e, _))| e.known_upper < floor)
            .map(|(k, _)| k.clone())
            .collect();
        for k in dead {
            self.remove(&k);
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timesync::ClientId;

    fn ver(ts: u64) -> Version {
        Version::new(Timestamp(ts), ClientId(1))
    }

    fn cache() -> VersionCache<u64, &'static str> {
        VersionCache::new(4)
    }

    #[test]
    fn hit_requires_window() {
        let mut c = cache();
        c.insert(1, ver(10), "a", Timestamp(20));
        assert!(c.lookup(&1, Timestamp(5)).is_none(), "below version");
        assert!(c.lookup(&1, Timestamp(25)).is_none(), "above known_upper");
        let e = c.lookup(&1, Timestamp(15)).expect("in window");
        assert_eq!(e.value, "a");
        assert_eq!((c.hits(), c.misses()), (1, 2));
    }

    #[test]
    fn newer_version_replaces_older() {
        let mut c = cache();
        c.insert(1, ver(10), "old", Timestamp(20));
        c.insert(1, ver(30), "new", Timestamp(30));
        assert!(c.lookup(&1, Timestamp(15)).is_none(), "old window gone");
        assert_eq!(c.lookup(&1, Timestamp(30)).unwrap().value, "new");
        // A late re-read of the old version must not clobber the new one.
        c.insert(1, ver(10), "old", Timestamp(20));
        assert_eq!(c.lookup(&1, Timestamp(30)).unwrap().value, "new");
    }

    #[test]
    fn reconfirmation_widens_window() {
        let mut c = cache();
        c.insert(1, ver(10), "a", Timestamp(20));
        c.insert(1, ver(10), "a", Timestamp(50));
        assert!(c.lookup(&1, Timestamp(40)).is_some());
        // Windows never shrink.
        c.insert(1, ver(10), "a", Timestamp(30));
        assert!(c.lookup(&1, Timestamp(50)).is_some());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = cache();
        for k in 0..4u64 {
            c.insert(k, ver(10), "x", Timestamp(20));
        }
        c.lookup(&0, Timestamp(15)); // 0 is now most recent
        c.insert(9, ver(10), "x", Timestamp(20)); // evicts 1
        assert!(c.lookup(&1, Timestamp(15)).is_none());
        assert!(c.lookup(&0, Timestamp(15)).is_some());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn lookup_latest_ignores_the_window() {
        let mut c = cache();
        c.insert(1, ver(10), "a", Timestamp(20));
        // Past the confirmed window: the exact lookup misses, the
        // speculative one still returns the newest known version.
        assert!(c.lookup(&1, Timestamp(100)).is_none());
        assert_eq!(c.lookup_latest(&1, Timestamp(100)).unwrap().value, "a");
        // But never a version from the snapshot's future.
        assert!(c.lookup_latest(&1, Timestamp(5)).is_none());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c: VersionCache<u64, &'static str> = VersionCache::new(0);
        c.insert(1, ver(10), "a", Timestamp(20));
        assert!(c.lookup(&1, Timestamp(15)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_below_drops_dead_windows() {
        let mut c = cache();
        c.insert(1, ver(10), "a", Timestamp(20));
        c.insert(2, ver(10), "b", Timestamp(90));
        c.invalidate_below(Timestamp(50));
        assert_eq!(c.len(), 1);
        assert!(c.lookup(&2, Timestamp(60)).is_some());
    }
}
