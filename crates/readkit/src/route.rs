//! Replica read-routing policy.
//!
//! The client keeps a [`ReplicaView`] per cluster: the last watermark and
//! queue depth each replica reported (piggybacked on read replies). A
//! [`ReadRoute`] policy then picks which backup — if any — should serve a
//! snapshot read at `ts_begin`. Replicas the client has never heard from,
//! or whose report is older than a staleness horizon, are *probe*
//! candidates: routing to them is how the client learns their watermark,
//! and the worst case is one extra hop ending in `TooStale` plus a primary
//! fallback.

use std::collections::BTreeMap;

use timesync::Timestamp;

/// Which replica serves snapshot reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadRoute {
    /// All reads go to the shard primary (the pre-readkit behavior).
    #[default]
    PrimaryOnly,
    /// Route to the covering backup with the highest known watermark.
    Freshest,
    /// Power-of-two-choices: draw two covering backups, pick the one with
    /// the smaller reported queue depth.
    PowerOfTwo,
}

impl ReadRoute {
    /// Stable name used in artifacts and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ReadRoute::PrimaryOnly => "primary-only",
            ReadRoute::Freshest => "freshest",
            ReadRoute::PowerOfTwo => "p2c",
        }
    }

    /// Parses the names accepted by `name`, plus a couple of aliases.
    pub fn parse(s: &str) -> Option<ReadRoute> {
        match s {
            "primary-only" | "primary" => Some(ReadRoute::PrimaryOnly),
            "freshest" => Some(ReadRoute::Freshest),
            "p2c" | "power-of-two" => Some(ReadRoute::PowerOfTwo),
            _ => None,
        }
    }
}

/// What the client last heard from one replica.
#[derive(Debug, Clone, Copy)]
struct ReplicaStat {
    watermark: Timestamp,
    depth: u64,
    heard_at_ns: u64,
}

/// Client-side routing table: per-replica watermark / load metadata.
///
/// Keyed by an opaque replica address `A` (milana uses its RPC `Addr`).
/// `BTreeMap` keeps iteration deterministic under simulation.
#[derive(Debug, Clone, Default)]
pub struct ReplicaView<A: Ord + Clone> {
    stats: BTreeMap<A, ReplicaStat>,
}

impl<A: Ord + Clone> ReplicaView<A> {
    /// An empty view.
    pub fn new() -> ReplicaView<A> {
        ReplicaView {
            stats: BTreeMap::new(),
        }
    }

    /// Records metadata piggybacked on a reply from `addr`.
    pub fn observe(&mut self, addr: A, watermark: Timestamp, depth: u64, now_ns: u64) {
        let e = self.stats.entry(addr).or_insert(ReplicaStat {
            watermark,
            depth,
            heard_at_ns: now_ns,
        });
        // Watermarks are monotone per replica; keep the freshest report.
        e.watermark = e.watermark.max(watermark);
        e.depth = depth;
        e.heard_at_ns = now_ns;
    }

    /// The last watermark heard from `addr`, if any.
    pub fn watermark(&self, addr: &A) -> Option<Timestamp> {
        self.stats.get(addr).map(|s| s.watermark)
    }

    /// Drops everything cached about `addr`.
    ///
    /// For when the replica *explicitly refused* to serve (`NotReady`): a
    /// cold-restarting replica regressed its applied watermark to zero and
    /// will not serve again until anti-entropy catch-up re-promises its
    /// write floor. [`ReplicaView::observe`] keeps watermarks monotone (a
    /// defense against reordered gossip), so without this the pre-restart
    /// watermark would keep advertising coverage the replica no longer
    /// has, and every read would burn its routed attempt on a guaranteed
    /// `NotReady`. Forgetting demotes the replica to an unknown
    /// (probe-eligible) candidate; the first reply after recovery
    /// re-populates the entry.
    pub fn forget(&mut self, addr: &A) {
        self.stats.remove(addr);
    }

    /// Picks the backup that should serve a snapshot read at `at`, or
    /// `None` to use the primary.
    ///
    /// `backups` is the candidate set (primaries excluded by the caller);
    /// entries older than `stale_after_ns` — and replicas never heard from
    /// — count as *unknown* and stay eligible as probes. `rand` draws a
    /// uniform index in `[0, n)` for the power-of-two policy.
    pub fn pick(
        &self,
        route: ReadRoute,
        backups: &[A],
        at: Timestamp,
        stale_after_ns: u64,
        now_ns: u64,
        mut rand: impl FnMut(u64) -> u64,
    ) -> Option<A> {
        if route == ReadRoute::PrimaryOnly || backups.is_empty() {
            return None;
        }
        // (addr, known watermark if fresh, depth) for eligible replicas.
        let mut cands: Vec<(&A, Option<Timestamp>, u64)> = Vec::new();
        for b in backups {
            match self.stats.get(b) {
                None => cands.push((b, None, 0)),
                Some(s) => {
                    let elapsed = now_ns.saturating_sub(s.heard_at_ns);
                    if elapsed > stale_after_ns {
                        cands.push((b, None, s.depth));
                    } else if s.watermark >= at {
                        cands.push((b, Some(s.watermark), s.depth));
                    } else if Timestamp(s.watermark.0.saturating_add(elapsed)) >= at {
                        // The report proves the replica was stale *then*,
                        // but watermarks advance at roughly wall rate while
                        // clients report, so by now it plausibly covers
                        // `at`: probe it. A miss costs one TooStale hop.
                        cands.push((b, None, s.depth));
                    }
                    // Fresh and behind even after extrapolation: skip, the
                    // primary is faster than a guaranteed TooStale.
                }
            }
        }
        if cands.is_empty() {
            return None;
        }
        match route {
            ReadRoute::PrimaryOnly => None,
            ReadRoute::Freshest => {
                // Prefer known-covering replicas by watermark; probe
                // unknowns only when nothing is known to cover.
                cands
                    .iter()
                    .filter(|(_, wm, _)| wm.is_some())
                    .max_by_key(|(_, wm, _)| *wm)
                    .or_else(|| cands.first())
                    .map(|(a, _, _)| (*a).clone())
            }
            ReadRoute::PowerOfTwo => {
                let n = cands.len() as u64;
                let i = rand(n) as usize;
                let j = rand(n) as usize;
                let (a, b) = (&cands[i], &cands[j]);
                let pick = if b.2 < a.2 { b } else { a };
                Some(pick.0.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(n: u64) -> Timestamp {
        Timestamp(n)
    }

    #[test]
    fn primary_only_never_routes() {
        let mut v: ReplicaView<u32> = ReplicaView::new();
        v.observe(1, ts(100), 0, 0);
        assert_eq!(
            v.pick(ReadRoute::PrimaryOnly, &[1], ts(10), 1000, 0, |_| 0),
            None
        );
    }

    #[test]
    fn unknown_replicas_are_probed() {
        let v: ReplicaView<u32> = ReplicaView::new();
        // Never heard from either backup: still routes (probe).
        let got = v.pick(ReadRoute::Freshest, &[1, 2], ts(50), 1000, 0, |_| 0);
        assert_eq!(got, Some(1));
    }

    #[test]
    fn freshest_prefers_highest_covering_watermark() {
        let mut v: ReplicaView<u32> = ReplicaView::new();
        v.observe(1, ts(80), 0, 0);
        v.observe(2, ts(120), 0, 0);
        v.observe(3, ts(40), 0, 0); // fresh but below `at`: ineligible
        let got = v.pick(ReadRoute::Freshest, &[1, 2, 3], ts(60), 1000, 10, |_| 0);
        assert_eq!(got, Some(2));
    }

    #[test]
    fn non_covering_fresh_replica_is_skipped() {
        let mut v: ReplicaView<u32> = ReplicaView::new();
        v.observe(1, ts(40), 0, 0);
        let got = v.pick(ReadRoute::Freshest, &[1], ts(60), 1000, 10, |_| 0);
        assert_eq!(got, None);
    }

    #[test]
    fn extrapolated_watermark_reopens_the_probe() {
        let mut v: ReplicaView<u32> = ReplicaView::new();
        v.observe(1, ts(40), 0, 0); // stale for `at = 60` when observed …
                                    // … but 30ns later the floor has plausibly advanced past 60.
        let got = v.pick(ReadRoute::Freshest, &[1], ts(60), 1000, 30, |_| 0);
        assert_eq!(got, Some(1));
    }

    #[test]
    fn stale_entries_become_probes_again() {
        let mut v: ReplicaView<u32> = ReplicaView::new();
        v.observe(1, ts(40), 0, 0); // not covering …
        let got = v.pick(ReadRoute::Freshest, &[1], ts(60), 1000, 5000, |_| 0);
        // … but the report has aged out, so it is probed anyway.
        assert_eq!(got, Some(1));
    }

    #[test]
    fn power_of_two_picks_lower_depth() {
        let mut v: ReplicaView<u32> = ReplicaView::new();
        v.observe(1, ts(100), 9, 0);
        v.observe(2, ts(100), 2, 0);
        let mut draws = [0u64, 1].into_iter();
        let got = v.pick(ReadRoute::PowerOfTwo, &[1, 2], ts(50), 1000, 0, |_| {
            draws.next().unwrap()
        });
        assert_eq!(got, Some(2));
    }

    #[test]
    fn forget_demotes_a_covering_replica_to_a_probe() {
        let mut v: ReplicaView<u32> = ReplicaView::new();
        v.observe(1, ts(120), 0, 0);
        v.observe(2, ts(80), 0, 0);
        // Replica 1 is the known-freshest pick …
        let got = v.pick(ReadRoute::Freshest, &[1, 2], ts(60), 1000, 10, |_| 0);
        assert_eq!(got, Some(1));
        // … until it answers NotReady and is forgotten: the monotone
        // observe max is gone, and 2 (known covering) wins over 1
        // (mere probe).
        v.forget(&1);
        assert_eq!(v.watermark(&1), None);
        let got = v.pick(ReadRoute::Freshest, &[1, 2], ts(60), 1000, 10, |_| 0);
        assert_eq!(got, Some(2));
        // A fresh post-recovery report repopulates the entry from scratch
        // — no resurrection of the pre-restart watermark.
        v.observe(1, ts(30), 0, 20);
        assert_eq!(v.watermark(&1), Some(ts(30)));
    }

    #[test]
    fn watermark_reports_never_regress() {
        let mut v: ReplicaView<u32> = ReplicaView::new();
        v.observe(1, ts(100), 0, 0);
        v.observe(1, ts(60), 3, 5); // late, lower report
        assert_eq!(v.watermark(&1), Some(ts(100)));
    }
}
