//! readkit — watermark-consistent read scaling.
//!
//! The paper's precision-time version stamps make snapshot reads
//! *location-independent*: a read at `ts_begin` returns the same value from
//! any replica whose **applied watermark** — the highest timestamp below
//! which its version chains are complete — covers `ts_begin`. This crate
//! holds the two client-side building blocks that exploit that property:
//!
//! * [`ReadRoute`] / [`ReplicaView`] — a pluggable routing policy over the
//!   replicas of a shard, fed by the watermark and queue-depth metadata
//!   that replicas piggyback on read replies.
//! * [`VersionCache`] — a bounded LRU of `(key → version, value)` entries.
//!   Versions are immutable by construction (a key's value at version `v`
//!   never changes; writes create new versions), so a cached entry can
//!   serve any snapshot `at` that falls inside the window in which the
//!   entry is known to be the newest version (`version.ts ≤ at ≤
//!   known_upper`).
//!
//! Neither type performs I/O; milana's client owns the RPC plumbing and
//! consults these as pure policy/state.

mod cache;
mod route;

pub use cache::{CacheEntry, VersionCache};
pub use route::{ReadRoute, ReplicaView};
