//! Property-based tests for the clock and watermark machinery: the safety
//! of everything above (at-most-once, GC, local validation) rests on
//! per-clock monotonicity and the watermark lower bound.

use proptest::prelude::*;
use simkit::time::SimTime;
use timesync::{ClientId, Discipline, SyncedClock, Timestamp, Version, WatermarkTracker};

proptest! {
    /// Issued timestamps are strictly monotonic for ANY pattern of reads —
    /// including repeated reads at one instant and reads spanning many
    /// resynchronization boundaries that step the offset backwards.
    #[test]
    fn clock_is_strictly_monotonic(
        seed in 0u64..10_000,
        steps in proptest::collection::vec(0u64..5_000_000_000, 1..200),
        discipline_pick in 0u8..4,
    ) {
        let discipline = match discipline_pick {
            0 => Discipline::Perfect,
            1 => Discipline::PtpHardware,
            2 => Discipline::PtpSoftware,
            _ => Discipline::Ntp,
        };
        let clock = SyncedClock::new(discipline, seed);
        let mut now = 0u64;
        let mut last = Timestamp::ZERO;
        for step in steps {
            now = now.saturating_add(step % 100_000_000); // up to 100ms steps
            let ts = clock.now(SimTime::from_nanos(now));
            prop_assert!(ts > last, "regressed: {ts:?} after {last:?}");
            last = ts;
        }
    }

    /// The issued timestamp never strays from true time by more than the
    /// discipline's plausible bound (plus the monotonicity correction).
    #[test]
    fn clock_skew_is_bounded(
        seed in 0u64..10_000,
        instants in proptest::collection::vec(1u64..60_000, 1..50),
    ) {
        let clock = SyncedClock::new(Discipline::Ntp, seed);
        // NTP is calibrated to ~1.5ms mean pairwise skew => offsets are a
        // few ms; 50ms is a generous hard bound for a sane model.
        let bound_ns = 50_000_000i128;
        let mut ms_sorted = instants;
        ms_sorted.sort_unstable();
        for ms in ms_sorted {
            let true_ns = ms as i128 * 1_000_000;
            let ts = clock.now(SimTime::from_millis(ms)).as_nanos() as i128;
            prop_assert!((ts - true_ns).abs() < bound_ns, "skew {}ns", ts - true_ns);
        }
    }

    /// Version ordering is a total order consistent with (ts, client).
    #[test]
    fn version_order_is_total_and_consistent(
        a_ts in any::<u64>(), a_c in any::<u32>(),
        b_ts in any::<u64>(), b_c in any::<u32>(),
    ) {
        let a = Version::new(Timestamp(a_ts), ClientId(a_c));
        let b = Version::new(Timestamp(b_ts), ClientId(b_c));
        // Antisymmetry + totality.
        prop_assert_eq!(a < b, b > a);
        prop_assert!(a < b || b < a || a == b);
        // Timestamp dominates; client id only breaks ties.
        if a_ts != b_ts {
            prop_assert_eq!(a < b, a_ts < b_ts);
        } else {
            prop_assert_eq!(a < b, a_c < b_c);
        }
    }

    /// The watermark never exceeds any client's reported progress, and is
    /// monotonically non-decreasing under monotone per-client reports.
    #[test]
    fn watermark_is_a_lower_bound(
        reports in proptest::collection::vec((0u32..5, 0u64..1_000_000), 1..200),
    ) {
        let clients: Vec<ClientId> = (0..5).map(ClientId).collect();
        let mut tracker = WatermarkTracker::new(clients.clone());
        let mut per_client = vec![Timestamp::ZERO; 5];
        let mut last_wm = tracker.watermark();
        for (c, ts) in reports {
            let ts = Timestamp(ts);
            tracker.update(ClientId(c), ts);
            if ts > per_client[c as usize] {
                per_client[c as usize] = ts;
            }
            let wm = tracker.watermark();
            // Lower bound on every client's progress...
            for &p in &per_client {
                prop_assert!(wm <= p);
            }
            // ...and equal to the minimum, and monotone.
            prop_assert_eq!(wm, per_client.iter().copied().min().unwrap());
            prop_assert!(wm >= last_wm);
            last_wm = wm;
        }
    }

    /// Mean pairwise skew between two independent clocks of one discipline
    /// stays within an order of magnitude of the calibration target.
    #[test]
    fn pairwise_skew_magnitudes_separate_disciplines(seed in 0u64..200) {
        let ptp_a = SyncedClock::new(Discipline::PtpSoftware, seed * 2 + 1);
        let ptp_b = SyncedClock::new(Discipline::PtpSoftware, seed * 2 + 2);
        let ntp_a = SyncedClock::new(Discipline::Ntp, seed * 2 + 1);
        let ntp_b = SyncedClock::new(Discipline::Ntp, seed * 2 + 2);
        // Sample offsets over many sync intervals and compare averages.
        let mut ptp_sum = 0f64;
        let mut ntp_sum = 0f64;
        let n = 40;
        for i in 0..n {
            let t = SimTime::from_millis(2_100 * (i + 1));
            let _ = (ptp_a.now(t), ptp_b.now(t), ntp_a.now(t), ntp_b.now(t));
            ptp_sum += (ptp_a.offset_ns() - ptp_b.offset_ns()).abs() as f64;
            ntp_sum += (ntp_a.offset_ns() - ntp_b.offset_ns()).abs() as f64;
        }
        // NTP skew must dwarf PTP skew — the premise of the whole paper.
        prop_assert!(ntp_sum > ptp_sum * 3.0, "ntp {ntp_sum} vs ptp {ptp_sum}");
    }
}
