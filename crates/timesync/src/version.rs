//! Timestamps and version stamps.
//!
//! SEMEL orders every write by a version `V = (timestamp, clientID)` (§3).
//! The timestamp is the writing client's local clock reading; the client id
//! breaks ties, giving a total order over simultaneous writes from different
//! clients and supporting linearizability (§3.3).

use std::fmt;
use std::time::Duration;

use simkit::time::SimTime;

/// Identifies a SEMEL/MILANA client (an application server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A client-local clock reading, in nanoseconds.
///
/// A 64-bit nanosecond timestamp does not wrap for centuries, matching the
/// paper's observation that wraparound is a non-issue (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp; sorts before any real clock reading.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The greatest representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Nanoseconds since the epoch of the issuing clock.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Interprets *true* simulation time as a timestamp (used by perfect
    /// clocks and by tests).
    pub const fn from_sim(t: SimTime) -> Timestamp {
        Timestamp(t.as_nanos())
    }

    /// The timestamp `d` later than `self`.
    pub fn after(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.as_nanos() as u64))
    }

    /// The timestamp `d` earlier than `self`, saturating at zero.
    pub fn before(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.as_nanos() as u64))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0 as f64 / 1e9)
    }
}

/// A SEMEL version stamp: `(timestamp, client_id)`, totally ordered.
///
/// # Examples
///
/// ```
/// use timesync::{ClientId, Timestamp, Version};
///
/// let a = Version::new(Timestamp(100), ClientId(1));
/// let b = Version::new(Timestamp(100), ClientId(2));
/// let c = Version::new(Timestamp(101), ClientId(0));
/// assert!(a < b); // client id breaks timestamp ties
/// assert!(b < c); // timestamp dominates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version {
    /// The writing client's clock at write time.
    pub ts: Timestamp,
    /// The writing client (tie-breaker).
    pub client: ClientId,
}

impl Version {
    /// Creates a version stamp.
    pub const fn new(ts: Timestamp, client: ClientId) -> Version {
        Version { ts, client }
    }

    /// The smallest version; sorts before any real write.
    pub const MIN: Version = Version {
        ts: Timestamp::ZERO,
        client: ClientId(0),
    };
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.client, self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_order_is_timestamp_then_client() {
        let mut vs = vec![
            Version::new(Timestamp(5), ClientId(9)),
            Version::new(Timestamp(5), ClientId(1)),
            Version::new(Timestamp(2), ClientId(3)),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Version::new(Timestamp(2), ClientId(3)),
                Version::new(Timestamp(5), ClientId(1)),
                Version::new(Timestamp(5), ClientId(9)),
            ]
        );
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(1_000);
        assert_eq!(t.after(Duration::from_nanos(5)), Timestamp(1_005));
        assert_eq!(t.before(Duration::from_nanos(5)), Timestamp(995));
        assert_eq!(Timestamp(3).before(Duration::from_secs(1)), Timestamp::ZERO);
    }

    #[test]
    fn from_sim_preserves_nanos() {
        assert_eq!(
            Timestamp::from_sim(SimTime::from_micros(7)),
            Timestamp(7_000)
        );
    }

    #[test]
    fn min_version_sorts_first() {
        assert!(Version::MIN < Version::new(Timestamp(1), ClientId(0)));
        assert!(Version::MIN <= Version::MIN);
    }
}
