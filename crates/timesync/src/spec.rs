//! One place to choose a clock: discipline plus optional fault model.
//!
//! Call sites used to pick a bare [`Discipline`] constant wherever a clock
//! was built. `ClockSpec` bundles that choice with the fault knobs added for
//! clock-health experiments (persistent oscillator drift today; the spec is
//! the extension point for future fault models) so cluster configs carry a
//! single clock description end to end.

use std::time::Duration;

use crate::clock::{Discipline, SyncedClock};

/// A complete clock description: the sync discipline plus any baked-in
/// oscillator fault. Convert from a bare [`Discipline`] with `.into()`.
///
/// # Examples
///
/// ```
/// use timesync::{ClockSpec, Discipline};
///
/// let spec = ClockSpec::ptp_software();
/// assert_eq!(spec.discipline, Discipline::PtpSoftware);
/// let faulty = ClockSpec::ntp().with_drift(1_000_000); // +1ms error per s
/// assert_eq!(faulty.drift_ns_per_s, 1_000_000);
/// let from_disc: ClockSpec = Discipline::Perfect.into();
/// assert_eq!(from_disc, ClockSpec::perfect());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClockSpec {
    /// The synchronization discipline clocks are built with.
    pub discipline: Discipline,
    /// Persistent oscillator drift in ns of error per second of true time;
    /// `0` (the default) for an honest clock.
    pub drift_ns_per_s: i64,
}

impl ClockSpec {
    /// Zero-skew clocks reading true time.
    pub fn perfect() -> ClockSpec {
        Discipline::Perfect.into()
    }

    /// PTP with NIC hardware timestamping (~150 ns pairwise skew).
    pub fn ptp_hardware() -> ClockSpec {
        Discipline::PtpHardware.into()
    }

    /// PTP with software timestamping (~53 µs pairwise skew, §5.2).
    pub fn ptp_software() -> ClockSpec {
        Discipline::PtpSoftware.into()
    }

    /// NTP (~1.51 ms pairwise skew, §5.2).
    pub fn ntp() -> ClockSpec {
        Discipline::Ntp.into()
    }

    /// Custom Gaussian offset model.
    pub fn custom(offset_std: Duration, sync_interval: Duration) -> ClockSpec {
        Discipline::Custom {
            offset_std,
            sync_interval,
        }
        .into()
    }

    /// Returns the spec with a persistent oscillator drift rate.
    pub fn with_drift(mut self, drift_ns_per_s: i64) -> ClockSpec {
        self.drift_ns_per_s = drift_ns_per_s;
        self
    }

    /// Builds one clock from this spec with its own RNG stream.
    pub fn build(&self, seed: u64) -> SyncedClock {
        SyncedClock::from_spec(self, seed)
    }

    /// Expected mean pairwise skew for an honest clock under this spec.
    pub fn expected_skew(&self) -> Duration {
        self.discipline.expected_skew()
    }
}

impl From<Discipline> for ClockSpec {
    fn from(discipline: Discipline) -> ClockSpec {
        ClockSpec {
            discipline,
            drift_ns_per_s: 0,
        }
    }
}

impl Default for ClockSpec {
    /// Defaults to the prototype's measured deployment: PTP with software
    /// timestamping.
    fn default() -> ClockSpec {
        ClockSpec::ptp_software()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_match_disciplines() {
        assert_eq!(ClockSpec::perfect().discipline, Discipline::Perfect);
        assert_eq!(ClockSpec::ntp().discipline, Discipline::Ntp);
        assert_eq!(ClockSpec::default(), ClockSpec::ptp_software());
        let c = ClockSpec::custom(Duration::from_micros(5), Duration::from_millis(50));
        assert_eq!(c.discipline.sync_interval(), Duration::from_millis(50));
    }

    #[test]
    fn with_drift_only_changes_drift() {
        let spec = ClockSpec::ptp_hardware().with_drift(42);
        assert_eq!(spec.discipline, Discipline::PtpHardware);
        assert_eq!(spec.drift_ns_per_s, 42);
        assert_eq!(ClockSpec::ptp_hardware().drift_ns_per_s, 0);
    }

    #[test]
    fn build_seeds_clock_with_spec() {
        let spec = ClockSpec::perfect().with_drift(1_000);
        let clock = spec.build(7);
        assert_eq!(clock.drift_ns_per_s(), 1_000);
        assert_eq!(*clock.discipline(), Discipline::Perfect);
    }
}
