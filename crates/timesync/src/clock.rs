//! Skewed, monotonic, periodically re-synchronized client clocks.
//!
//! Each client's clock is modeled as true simulation time plus an offset that
//! is re-drawn every synchronization interval (PTP and NTP daemons typically
//! exchange sync messages every couple of seconds, §2.1). The offset
//! distribution is calibrated so that the *average pairwise skew* across
//! clients matches the paper's measurements:
//!
//! - NTP: mean skew ≈ **1.51 ms** (§5.2)
//! - PTP software timestamping: mean skew ≈ **53.2 µs** (§5.2)
//! - PTP hardware timestamping: well under 1 µs (§2.1; ≈150 ns per
//!   Lee et al. \[37\])
//!
//! For offsets drawn i.i.d. `Normal(0, σ)`, the expected absolute difference
//! between two clients' offsets is `2σ/√π ≈ 1.128σ`; the constructors below
//! invert that relation.

use std::cell::RefCell;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use simkit::rng::normal;
use simkit::time::SimTime;

use crate::version::Timestamp;

/// A clock-synchronization discipline: how far a client clock strays from
/// true time and how often it resynchronizes.
#[derive(Debug, Clone, PartialEq)]
pub enum Discipline {
    /// Zero skew — the client reads true time. Baseline for experiments that
    /// must isolate non-clock effects (e.g. Figure 6 runs on one machine).
    Perfect,
    /// PTP with NIC hardware timestamping: ~150 ns pairwise skew.
    PtpHardware,
    /// PTP with software timestamping: ~53 µs mean pairwise skew, matching
    /// the prototype measurement in §5.2.
    PtpSoftware,
    /// NTP: ~1.51 ms mean pairwise skew, matching §5.2.
    Ntp,
    /// Custom Gaussian offset model.
    Custom {
        /// Standard deviation of the per-sync offset draw.
        offset_std: Duration,
        /// How often the offset is re-drawn.
        sync_interval: Duration,
    },
}

impl Discipline {
    /// Offset standard deviation σ (ns) such that mean pairwise skew matches
    /// the calibration target (`skew = 1.128 σ`).
    fn offset_std_ns(&self) -> f64 {
        const PAIRWISE_FACTOR: f64 = std::f64::consts::FRAC_2_SQRT_PI;
        match self {
            Discipline::Perfect => 0.0,
            Discipline::PtpHardware => 150.0 / PAIRWISE_FACTOR,
            Discipline::PtpSoftware => 53_200.0 / PAIRWISE_FACTOR,
            Discipline::Ntp => 1_510_000.0 / PAIRWISE_FACTOR,
            Discipline::Custom { offset_std, .. } => offset_std.as_nanos() as f64,
        }
    }

    /// Interval between offset re-draws.
    pub fn sync_interval(&self) -> Duration {
        match self {
            Discipline::Custom { sync_interval, .. } => *sync_interval,
            _ => Duration::from_secs(2),
        }
    }

    /// Expected mean pairwise skew across clients under this discipline.
    pub fn expected_skew(&self) -> Duration {
        Duration::from_nanos((self.offset_std_ns() * std::f64::consts::FRAC_2_SQRT_PI) as u64)
    }
}

#[derive(Debug)]
struct ClockState {
    offset_ns: i64,
    next_sync: SimTime,
    last_issued: Timestamp,
    /// Trace sink for resync events; disabled by default.
    tracer: obskit::Tracer,
    /// Client id stamped on emitted trace events.
    trace_client: u64,
}

/// A per-client clock: skewed against true time, strictly monotonic in what
/// it hands out.
///
/// `SyncedClock` is driven externally: callers pass the current *true*
/// simulation time to [`SyncedClock::now`], which applies the discipline's
/// offset (resampling it when a sync boundary has passed) and clamps the
/// result so repeated reads never go backwards — mirroring how PTP/NTP slew
/// rather than step clocks (§3.1 relies on this monotonicity for watermark
/// safety).
///
/// # Examples
///
/// ```
/// use timesync::{Discipline, SyncedClock};
/// use simkit::time::SimTime;
///
/// let clock = SyncedClock::new(Discipline::PtpSoftware, 42);
/// let t1 = clock.now(SimTime::from_millis(10));
/// let t2 = clock.now(SimTime::from_millis(10)); // same instant, later read
/// assert!(t2 > t1); // strictly monotonic
/// ```
#[derive(Debug)]
pub struct SyncedClock {
    discipline: Discipline,
    state: RefCell<ClockState>,
    rng: RefCell<StdRng>,
}

impl SyncedClock {
    /// Creates a clock with its own RNG stream derived from `seed`.
    pub fn new(discipline: Discipline, seed: u64) -> SyncedClock {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = discipline.offset_std_ns();
        let offset_ns = if std == 0.0 {
            0
        } else {
            normal(&mut rng, 0.0, std) as i64
        };
        SyncedClock {
            state: RefCell::new(ClockState {
                offset_ns,
                next_sync: SimTime::ZERO + discipline.sync_interval(),
                last_issued: Timestamp::ZERO,
                tracer: obskit::Tracer::disabled(),
                trace_client: 0,
            }),
            discipline,
            rng: RefCell::new(rng),
        }
    }

    /// The discipline this clock follows.
    pub fn discipline(&self) -> &Discipline {
        &self.discipline
    }

    /// Attaches a trace sink; each offset resample emits a
    /// [`obskit::TraceEvent::ClockSync`] stamped with `client`.
    pub fn attach_tracer(&self, tracer: &obskit::Tracer, client: u64) {
        let mut st = self.state.borrow_mut();
        st.tracer = tracer.clone();
        st.trace_client = client;
    }

    /// Reads the clock at true time `true_now`.
    ///
    /// Successive reads return strictly increasing timestamps even if the
    /// offset resample would move the clock backwards.
    pub fn now(&self, true_now: SimTime) -> Timestamp {
        let mut st = self.state.borrow_mut();
        if true_now >= st.next_sync {
            let std = self.discipline.offset_std_ns();
            if std > 0.0 {
                st.offset_ns = normal(&mut *self.rng.borrow_mut(), 0.0, std) as i64;
            }
            let interval = self.discipline.sync_interval();
            while st.next_sync <= true_now {
                st.next_sync += interval;
            }
            st.tracer.record(
                true_now.as_nanos(),
                obskit::TraceEvent::ClockSync {
                    client: st.trace_client,
                    offset_ns: st.offset_ns,
                },
            );
        }
        let raw = Timestamp(true_now.offset_by(st.offset_ns).as_nanos());
        let issued = if raw <= st.last_issued {
            Timestamp(st.last_issued.0 + 1)
        } else {
            raw
        };
        st.last_issued = issued;
        issued
    }

    /// The clock's current offset from true time, in nanoseconds (positive
    /// means the clock runs ahead). Exposed for skew instrumentation.
    pub fn offset_ns(&self) -> i64 {
        self.state.borrow().offset_ns
    }

    /// Fault injection: steps the clock's offset by `delta_ns`, as a broken
    /// sync daemon or a leap-second mishap would. The anomaly persists until
    /// the next scheduled resync redraws the offset. Issued timestamps are
    /// still clamped monotonic, so a large negative step manifests as the
    /// clock slewing (standing still) rather than running backwards —
    /// exactly the behavior §3.1's watermark safety argument relies on.
    ///
    /// Emits a [`obskit::TraceEvent::ClockSync`] recording the new offset
    /// when a tracer is attached (`at_ns` = 0 is used when the step happens
    /// before any read; steps are virtual-time-free events).
    pub fn inject_step(&self, delta_ns: i64) {
        let mut st = self.state.borrow_mut();
        st.offset_ns = st.offset_ns.saturating_add(delta_ns);
        st.tracer.record(
            st.last_issued.0,
            obskit::TraceEvent::ClockSync {
                client: st.trace_client,
                offset_ns: st.offset_ns,
            },
        );
    }
}

/// Mean absolute pairwise offset difference across `clocks`, in nanoseconds.
/// Instrumentation used by experiments to report achieved skew.
pub fn mean_pairwise_skew_ns(clocks: &[&SyncedClock]) -> f64 {
    if clocks.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0u64;
    for i in 0..clocks.len() {
        for j in (i + 1)..clocks.len() {
            total += (clocks[i].offset_ns() - clocks[j].offset_ns()).abs() as f64;
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_reads_true_time() {
        let c = SyncedClock::new(Discipline::Perfect, 1);
        assert_eq!(c.now(SimTime::from_micros(5)), Timestamp(5_000));
        assert_eq!(c.now(SimTime::from_micros(6)), Timestamp(6_000));
    }

    #[test]
    fn monotonic_even_at_same_instant() {
        let c = SyncedClock::new(Discipline::Ntp, 7);
        let t = SimTime::from_millis(1);
        let a = c.now(t);
        let b = c.now(t);
        let d = c.now(t);
        assert!(a < b && b < d);
    }

    #[test]
    fn monotonic_across_resync_that_jumps_backwards() {
        // Run many clocks over many sync intervals; issued stamps must never
        // regress even when the freshly sampled offset is far lower.
        for seed in 0..20 {
            let c = SyncedClock::new(Discipline::Ntp, seed);
            let mut last = Timestamp::ZERO;
            for ms in (0..30_000).step_by(250) {
                let ts = c.now(SimTime::from_millis(ms));
                assert!(ts > last, "seed {seed} regressed at {ms}ms");
                last = ts;
            }
        }
    }

    #[test]
    fn ntp_skew_magnitude_matches_calibration() {
        let clocks: Vec<SyncedClock> = (0..400)
            .map(|i| SyncedClock::new(Discipline::Ntp, 1000 + i))
            .collect();
        let refs: Vec<&SyncedClock> = clocks.iter().collect();
        let skew = mean_pairwise_skew_ns(&refs);
        let target = 1_510_000.0;
        assert!(
            (skew - target).abs() / target < 0.15,
            "mean skew {skew}ns vs target {target}ns"
        );
    }

    #[test]
    fn ptp_sw_skew_magnitude_matches_calibration() {
        let clocks: Vec<SyncedClock> = (0..400)
            .map(|i| SyncedClock::new(Discipline::PtpSoftware, 2000 + i))
            .collect();
        let refs: Vec<&SyncedClock> = clocks.iter().collect();
        let skew = mean_pairwise_skew_ns(&refs);
        let target = 53_200.0;
        assert!(
            (skew - target).abs() / target < 0.15,
            "mean skew {skew}ns vs target {target}ns"
        );
    }

    #[test]
    fn disciplines_are_ordered_by_precision() {
        let hw = Discipline::PtpHardware.expected_skew();
        let sw = Discipline::PtpSoftware.expected_skew();
        let ntp = Discipline::Ntp.expected_skew();
        assert!(hw < sw && sw < ntp);
        assert_eq!(Discipline::Perfect.expected_skew(), Duration::ZERO);
    }

    #[test]
    fn offset_resamples_at_sync_interval() {
        let c = SyncedClock::new(Discipline::Ntp, 3);
        let before = c.offset_ns();
        let _ = c.now(SimTime::from_secs(3)); // past the 2s sync boundary
        let after = c.offset_ns();
        assert_ne!(before, after);
    }

    #[test]
    fn injected_step_shifts_reads_but_stays_monotonic() {
        let c = SyncedClock::new(Discipline::Perfect, 1);
        let t1 = c.now(SimTime::from_millis(1));
        c.inject_step(5_000_000); // +5ms
        let t2 = c.now(SimTime::from_millis(1));
        assert!(t2.0 >= t1.0 + 5_000_000, "step visible: {t2:?} vs {t1:?}");
        c.inject_step(-50_000_000); // far backwards
        let t3 = c.now(SimTime::from_millis(2));
        assert!(t3 > t2, "monotonic clamp holds across negative step");
    }

    #[test]
    fn custom_discipline_uses_given_parameters() {
        let d = Discipline::Custom {
            offset_std: Duration::from_micros(10),
            sync_interval: Duration::from_millis(100),
        };
        assert_eq!(d.sync_interval(), Duration::from_millis(100));
        let c = SyncedClock::new(d, 5);
        let before = c.offset_ns();
        let _ = c.now(SimTime::from_millis(150));
        assert_ne!(before, c.offset_ns());
    }
}
