//! Skewed, monotonic, periodically re-synchronized client clocks.
//!
//! Each client's clock is modeled as true simulation time plus an offset that
//! is re-drawn every synchronization interval (PTP and NTP daemons typically
//! exchange sync messages every couple of seconds, §2.1). The offset
//! distribution is calibrated so that the *average pairwise skew* across
//! clients matches the paper's measurements:
//!
//! - NTP: mean skew ≈ **1.51 ms** (§5.2)
//! - PTP software timestamping: mean skew ≈ **53.2 µs** (§5.2)
//! - PTP hardware timestamping: well under 1 µs (§2.1; ≈150 ns per
//!   Lee et al. \[37\])
//!
//! For offsets drawn i.i.d. `Normal(0, σ)`, the expected absolute difference
//! between two clients' offsets is `2σ/√π ≈ 1.128σ`; the constructors below
//! invert that relation.

use std::cell::RefCell;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use simkit::rng::normal;
use simkit::time::SimTime;

use crate::version::Timestamp;

/// A clock-synchronization discipline: how far a client clock strays from
/// true time and how often it resynchronizes.
#[derive(Debug, Clone, PartialEq)]
pub enum Discipline {
    /// Zero skew — the client reads true time. Baseline for experiments that
    /// must isolate non-clock effects (e.g. Figure 6 runs on one machine).
    Perfect,
    /// PTP with NIC hardware timestamping: ~150 ns pairwise skew.
    PtpHardware,
    /// PTP with software timestamping: ~53 µs mean pairwise skew, matching
    /// the prototype measurement in §5.2.
    PtpSoftware,
    /// NTP: ~1.51 ms mean pairwise skew, matching §5.2.
    Ntp,
    /// Custom Gaussian offset model.
    Custom {
        /// Standard deviation of the per-sync offset draw.
        offset_std: Duration,
        /// How often the offset is re-drawn.
        sync_interval: Duration,
    },
}

impl Discipline {
    /// Offset standard deviation σ (ns) such that mean pairwise skew matches
    /// the calibration target (`skew = 1.128 σ`).
    fn offset_std_ns(&self) -> f64 {
        const PAIRWISE_FACTOR: f64 = std::f64::consts::FRAC_2_SQRT_PI;
        match self {
            Discipline::Perfect => 0.0,
            Discipline::PtpHardware => 150.0 / PAIRWISE_FACTOR,
            Discipline::PtpSoftware => 53_200.0 / PAIRWISE_FACTOR,
            Discipline::Ntp => 1_510_000.0 / PAIRWISE_FACTOR,
            Discipline::Custom { offset_std, .. } => offset_std.as_nanos() as f64,
        }
    }

    /// Interval between offset re-draws.
    pub fn sync_interval(&self) -> Duration {
        match self {
            Discipline::Custom { sync_interval, .. } => *sync_interval,
            _ => Duration::from_secs(2),
        }
    }

    /// Expected mean pairwise skew across clients under this discipline.
    pub fn expected_skew(&self) -> Duration {
        Duration::from_nanos((self.offset_std_ns() * std::f64::consts::FRAC_2_SQRT_PI) as u64)
    }
}

#[derive(Debug)]
struct ClockState {
    offset_ns: i64,
    next_sync: SimTime,
    last_issued: Timestamp,
    /// Active discipline; starts as the constructed one and changes only
    /// through [`SyncedClock::downgrade`].
    discipline: Discipline,
    /// Persistent oscillator drift (ns of error accrued per second of true
    /// time). `0` for an honest clock.
    drift_ns_per_s: i64,
    /// True time the current drift segment started (ns).
    drift_anchor_ns: u64,
    /// Holdover: the sync source is lost, so offsets are never redrawn and
    /// the oscillator free-runs at `drift_ns_per_s`.
    holdover: bool,
    /// Trace sink for resync events; disabled by default.
    tracer: obskit::Tracer,
    /// Client id stamped on emitted trace events.
    trace_client: u64,
}

impl ClockState {
    /// Total correction at true time `now_ns`: the sampled offset plus
    /// whatever the drift segment has accrued since its anchor.
    fn offset_at(&self, now_ns: u64) -> i64 {
        let elapsed = now_ns.saturating_sub(self.drift_anchor_ns) as i128;
        let drifted = elapsed * self.drift_ns_per_s as i128 / 1_000_000_000;
        self.offset_ns.saturating_add(drifted as i64)
    }

    /// Folds accrued drift into the base offset and re-anchors at `now_ns`
    /// — called whenever the drift rate changes so past error is kept.
    fn rebase(&mut self, now_ns: u64) {
        self.offset_ns = self.offset_at(now_ns);
        self.drift_anchor_ns = now_ns;
    }
}

/// A per-client clock: skewed against true time, strictly monotonic in what
/// it hands out.
///
/// `SyncedClock` is driven externally: callers pass the current *true*
/// simulation time to [`SyncedClock::now`], which applies the discipline's
/// offset (resampling it when a sync boundary has passed) and clamps the
/// result so repeated reads never go backwards — mirroring how PTP/NTP slew
/// rather than step clocks (§3.1 relies on this monotonicity for watermark
/// safety).
///
/// # Examples
///
/// ```
/// use timesync::{Discipline, SyncedClock};
/// use simkit::time::SimTime;
///
/// let clock = SyncedClock::new(Discipline::PtpSoftware, 42);
/// let t1 = clock.now(SimTime::from_millis(10));
/// let t2 = clock.now(SimTime::from_millis(10)); // same instant, later read
/// assert!(t2 > t1); // strictly monotonic
/// ```
#[derive(Debug)]
pub struct SyncedClock {
    discipline: Discipline,
    state: RefCell<ClockState>,
    rng: RefCell<StdRng>,
}

impl SyncedClock {
    /// Creates a clock with its own RNG stream derived from `seed`.
    pub fn new(discipline: Discipline, seed: u64) -> SyncedClock {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = discipline.offset_std_ns();
        let offset_ns = if std == 0.0 {
            0
        } else {
            normal(&mut rng, 0.0, std) as i64
        };
        SyncedClock {
            state: RefCell::new(ClockState {
                offset_ns,
                next_sync: SimTime::ZERO + discipline.sync_interval(),
                last_issued: Timestamp::ZERO,
                discipline: discipline.clone(),
                drift_ns_per_s: 0,
                drift_anchor_ns: 0,
                holdover: false,
                tracer: obskit::Tracer::disabled(),
                trace_client: 0,
            }),
            discipline,
            rng: RefCell::new(rng),
        }
    }

    /// Builds a clock from a [`crate::ClockSpec`]: the spec's discipline plus
    /// any baked-in oscillator drift.
    pub fn from_spec(spec: &crate::ClockSpec, seed: u64) -> SyncedClock {
        let clock = SyncedClock::new(spec.discipline.clone(), seed);
        if spec.drift_ns_per_s != 0 {
            clock.inject_drift(spec.drift_ns_per_s, SimTime::ZERO);
        }
        clock
    }

    /// The discipline this clock follows.
    pub fn discipline(&self) -> &Discipline {
        &self.discipline
    }

    /// Attaches a trace sink; each offset resample emits a
    /// [`obskit::TraceEvent::ClockSync`] stamped with `client`.
    pub fn attach_tracer(&self, tracer: &obskit::Tracer, client: u64) {
        let mut st = self.state.borrow_mut();
        st.tracer = tracer.clone();
        st.trace_client = client;
    }

    /// Reads the clock at true time `true_now`.
    ///
    /// Successive reads return strictly increasing timestamps even if the
    /// offset resample would move the clock backwards.
    pub fn now(&self, true_now: SimTime) -> Timestamp {
        let mut st = self.state.borrow_mut();
        if !st.holdover && true_now >= st.next_sync {
            let std = st.discipline.offset_std_ns();
            if std > 0.0 {
                st.offset_ns = normal(&mut *self.rng.borrow_mut(), 0.0, std) as i64;
            } else if st.drift_ns_per_s != 0 {
                // A perfect-discipline sync still corrects the error the
                // drifting oscillator accrued since the last exchange.
                st.offset_ns = 0;
            }
            // The sync exchange corrects accrued drift; the (faulty) rate
            // itself survives, so error re-grows until the next boundary.
            st.drift_anchor_ns = true_now.as_nanos();
            let interval = st.discipline.sync_interval();
            while st.next_sync <= true_now {
                st.next_sync += interval;
            }
            st.tracer.record(
                true_now.as_nanos(),
                obskit::TraceEvent::ClockSync {
                    client: st.trace_client,
                    offset_ns: st.offset_ns,
                },
            );
        }
        let raw = Timestamp(
            true_now
                .offset_by(st.offset_at(true_now.as_nanos()))
                .as_nanos(),
        );
        let issued = if raw <= st.last_issued {
            Timestamp(st.last_issued.0 + 1)
        } else {
            raw
        };
        st.last_issued = issued;
        issued
    }

    /// The clock's current offset from true time, in nanoseconds (positive
    /// means the clock runs ahead). Exposed for skew instrumentation.
    pub fn offset_ns(&self) -> i64 {
        self.state.borrow().offset_ns
    }

    /// Fault injection: steps the clock's offset by `delta_ns`, as a broken
    /// sync daemon or a leap-second mishap would. The anomaly persists until
    /// the next scheduled resync redraws the offset. Issued timestamps are
    /// still clamped monotonic, so a large negative step manifests as the
    /// clock slewing (standing still) rather than running backwards —
    /// exactly the behavior §3.1's watermark safety argument relies on.
    ///
    /// Emits a [`obskit::TraceEvent::ClockSync`] recording the new offset
    /// when a tracer is attached (`at_ns` = 0 is used when the step happens
    /// before any read; steps are virtual-time-free events).
    pub fn inject_step(&self, delta_ns: i64) {
        let mut st = self.state.borrow_mut();
        st.offset_ns = st.offset_ns.saturating_add(delta_ns);
        st.tracer.record(
            st.last_issued.0,
            obskit::TraceEvent::ClockSync {
                client: st.trace_client,
                offset_ns: st.offset_ns,
            },
        );
    }

    /// Fault injection: gives the oscillator a persistent drift of
    /// `rate_ns_per_s` nanoseconds of error per second of true time,
    /// starting at true time `now`. Error accrued under any previous rate is
    /// folded into the offset so the clock never snaps. Each sync exchange
    /// corrects the accrued error (the rate itself survives), so a synced
    /// drifting clock strays by at most `rate × sync_interval` — combine
    /// with [`SyncedClock::enter_holdover`] for unbounded runaway.
    pub fn inject_drift(&self, rate_ns_per_s: i64, now: SimTime) {
        let mut st = self.state.borrow_mut();
        st.rebase(now.as_nanos());
        st.drift_ns_per_s = rate_ns_per_s;
    }

    /// Fault injection: the sync source is lost (holdover). Offsets are no
    /// longer redrawn and accrued drift is never corrected, so the clock
    /// free-runs at whatever [`SyncedClock::inject_drift`] rate is active.
    pub fn enter_holdover(&self) {
        self.state.borrow_mut().holdover = true;
    }

    /// Ends holdover at true time `now`; the next read resynchronizes.
    pub fn exit_holdover(&self, now: SimTime) {
        let mut st = self.state.borrow_mut();
        if !st.holdover {
            return;
        }
        st.holdover = false;
        st.next_sync = now;
    }

    /// Fault injection: swaps the active discipline mid-run (e.g. the PTP
    /// daemon dies and NTP takes over). Takes effect at the next read, which
    /// immediately resamples from the new discipline's offset distribution.
    pub fn downgrade(&self, to: Discipline) {
        let mut st = self.state.borrow_mut();
        st.discipline = to;
        st.next_sync = SimTime::ZERO;
    }

    /// The discipline currently in effect — differs from
    /// [`SyncedClock::discipline`] after a [`SyncedClock::downgrade`].
    pub fn active_discipline(&self) -> Discipline {
        self.state.borrow().discipline.clone()
    }

    /// The active oscillator drift rate (ns of error per second), `0` unless
    /// [`SyncedClock::inject_drift`] was called.
    pub fn drift_ns_per_s(&self) -> i64 {
        self.state.borrow().drift_ns_per_s
    }

    /// Whether the clock is in holdover (sync source lost).
    pub fn is_holdover(&self) -> bool {
        self.state.borrow().holdover
    }
}

/// Mean absolute pairwise offset difference across `clocks`, in nanoseconds.
/// Instrumentation used by experiments to report achieved skew.
pub fn mean_pairwise_skew_ns(clocks: &[&SyncedClock]) -> f64 {
    if clocks.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0u64;
    for i in 0..clocks.len() {
        for j in (i + 1)..clocks.len() {
            total += (clocks[i].offset_ns() - clocks[j].offset_ns()).abs() as f64;
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_reads_true_time() {
        let c = SyncedClock::new(Discipline::Perfect, 1);
        assert_eq!(c.now(SimTime::from_micros(5)), Timestamp(5_000));
        assert_eq!(c.now(SimTime::from_micros(6)), Timestamp(6_000));
    }

    #[test]
    fn monotonic_even_at_same_instant() {
        let c = SyncedClock::new(Discipline::Ntp, 7);
        let t = SimTime::from_millis(1);
        let a = c.now(t);
        let b = c.now(t);
        let d = c.now(t);
        assert!(a < b && b < d);
    }

    #[test]
    fn monotonic_across_resync_that_jumps_backwards() {
        // Run many clocks over many sync intervals; issued stamps must never
        // regress even when the freshly sampled offset is far lower.
        for seed in 0..20 {
            let c = SyncedClock::new(Discipline::Ntp, seed);
            let mut last = Timestamp::ZERO;
            for ms in (0..30_000).step_by(250) {
                let ts = c.now(SimTime::from_millis(ms));
                assert!(ts > last, "seed {seed} regressed at {ms}ms");
                last = ts;
            }
        }
    }

    #[test]
    fn ntp_skew_magnitude_matches_calibration() {
        let clocks: Vec<SyncedClock> = (0..400)
            .map(|i| SyncedClock::new(Discipline::Ntp, 1000 + i))
            .collect();
        let refs: Vec<&SyncedClock> = clocks.iter().collect();
        let skew = mean_pairwise_skew_ns(&refs);
        let target = 1_510_000.0;
        assert!(
            (skew - target).abs() / target < 0.15,
            "mean skew {skew}ns vs target {target}ns"
        );
    }

    #[test]
    fn ptp_sw_skew_magnitude_matches_calibration() {
        let clocks: Vec<SyncedClock> = (0..400)
            .map(|i| SyncedClock::new(Discipline::PtpSoftware, 2000 + i))
            .collect();
        let refs: Vec<&SyncedClock> = clocks.iter().collect();
        let skew = mean_pairwise_skew_ns(&refs);
        let target = 53_200.0;
        assert!(
            (skew - target).abs() / target < 0.15,
            "mean skew {skew}ns vs target {target}ns"
        );
    }

    #[test]
    fn disciplines_are_ordered_by_precision() {
        let hw = Discipline::PtpHardware.expected_skew();
        let sw = Discipline::PtpSoftware.expected_skew();
        let ntp = Discipline::Ntp.expected_skew();
        assert!(hw < sw && sw < ntp);
        assert_eq!(Discipline::Perfect.expected_skew(), Duration::ZERO);
    }

    #[test]
    fn offset_resamples_at_sync_interval() {
        let c = SyncedClock::new(Discipline::Ntp, 3);
        let before = c.offset_ns();
        let _ = c.now(SimTime::from_secs(3)); // past the 2s sync boundary
        let after = c.offset_ns();
        assert_ne!(before, after);
    }

    #[test]
    fn injected_step_shifts_reads_but_stays_monotonic() {
        let c = SyncedClock::new(Discipline::Perfect, 1);
        let t1 = c.now(SimTime::from_millis(1));
        c.inject_step(5_000_000); // +5ms
        let t2 = c.now(SimTime::from_millis(1));
        assert!(t2.0 >= t1.0 + 5_000_000, "step visible: {t2:?} vs {t1:?}");
        c.inject_step(-50_000_000); // far backwards
        let t3 = c.now(SimTime::from_millis(2));
        assert!(t3 > t2, "monotonic clamp holds across negative step");
    }

    #[test]
    fn drift_accrues_between_syncs_and_is_corrected_at_boundaries() {
        let c = SyncedClock::new(Discipline::Perfect, 9);
        c.inject_drift(1_000_000, SimTime::ZERO); // +1ms per second
                                                  // 1s in: half a sync interval elapsed, ~1ms of error accrued.
        let t = c.now(SimTime::from_secs(1));
        assert_eq!(t, Timestamp(1_000_000_000 + 1_000_000));
        // Just past the 2s sync boundary the exchange corrected the error.
        let t = c.now(SimTime::from_millis(2_001));
        assert!(
            t.0 - 2_001_000_000 < 10_000,
            "sync should wipe accrued drift, got {t:?}"
        );
    }

    #[test]
    fn holdover_drift_runs_away_uncorrected() {
        let c = SyncedClock::new(Discipline::Perfect, 9);
        c.enter_holdover();
        c.inject_drift(1_000_000, SimTime::ZERO);
        let t = c.now(SimTime::from_secs(10)); // 5 sync boundaries skipped
        assert_eq!(t, Timestamp(10_000_000_000 + 10_000_000));
        // Exiting holdover resyncs at the next read. The clock ran ~10ms
        // ahead, so the monotonic clamp makes it stand still (slew) instead
        // of snapping back: reads barely advance until true time catches up.
        c.exit_holdover(SimTime::from_secs(10));
        let clamped = c.now(SimTime::from_millis(10_001));
        assert_eq!(clamped, Timestamp(t.0 + 1), "clamp holds after resync");
        // True time catches the clamp; only drift re-accrued since the
        // resync (19ms × 1ms/s = 19µs) remains.
        let caught_up = c.now(SimTime::from_millis(10_020));
        assert_eq!(caught_up, Timestamp(10_020_000_000 + 19_000));
    }

    #[test]
    fn drift_rate_change_keeps_accrued_error() {
        let c = SyncedClock::new(Discipline::Perfect, 9);
        c.enter_holdover();
        c.inject_drift(1_000_000, SimTime::ZERO);
        let _ = c.now(SimTime::from_secs(1));
        c.inject_drift(0, SimTime::from_secs(1)); // stop drifting; error stays
        let t = c.now(SimTime::from_secs(2));
        assert_eq!(t, Timestamp(2_000_000_000 + 1_000_000));
    }

    #[test]
    fn downgrade_switches_offset_distribution() {
        let c = SyncedClock::new(Discipline::PtpHardware, 11);
        let _ = c.now(SimTime::from_millis(1));
        assert!(c.offset_ns().abs() < 2_000, "hw-grade offset");
        c.downgrade(Discipline::Ntp);
        assert_eq!(c.active_discipline(), Discipline::Ntp);
        assert_eq!(*c.discipline(), Discipline::PtpHardware);
        // Next read resamples from the NTP distribution (σ ≈ 1.3ms); over a
        // few seeds at least one draw must be far outside hw range.
        let t = c.now(SimTime::from_millis(2));
        assert!(t > Timestamp::ZERO);
        let mut saw_large = c.offset_ns().abs() > 100_000;
        for seed in 0..10 {
            let c = SyncedClock::new(Discipline::PtpHardware, seed);
            c.downgrade(Discipline::Ntp);
            let _ = c.now(SimTime::from_millis(1));
            saw_large |= c.offset_ns().abs() > 100_000;
        }
        assert!(saw_large, "downgraded clocks should draw NTP-scale offsets");
    }

    #[test]
    fn monotonic_under_combined_faults() {
        for seed in 0..10 {
            let c = SyncedClock::new(Discipline::PtpSoftware, seed);
            let mut last = Timestamp::ZERO;
            for ms in (0..20_000u64).step_by(100) {
                match ms {
                    3_000 => c.inject_drift(-2_000_000, SimTime::from_millis(ms)),
                    6_000 => c.inject_step(-10_000_000),
                    9_000 => c.enter_holdover(),
                    12_000 => c.downgrade(Discipline::Ntp),
                    15_000 => c.exit_holdover(SimTime::from_millis(ms)),
                    _ => {}
                }
                let ts = c.now(SimTime::from_millis(ms));
                assert!(ts > last, "seed {seed} regressed at {ms}ms");
                last = ts;
            }
        }
    }

    #[test]
    fn from_spec_applies_drift() {
        let spec = crate::ClockSpec::perfect().with_drift(500_000);
        let c = SyncedClock::from_spec(&spec, 3);
        assert_eq!(c.drift_ns_per_s(), 500_000);
        let honest = SyncedClock::from_spec(&crate::ClockSpec::perfect(), 3);
        assert_eq!(honest.drift_ns_per_s(), 0);
        assert_eq!(honest.now(SimTime::from_secs(1)), Timestamp(1_000_000_000));
    }

    #[test]
    fn custom_discipline_uses_given_parameters() {
        let d = Discipline::Custom {
            offset_std: Duration::from_micros(10),
            sync_interval: Duration::from_millis(100),
        };
        assert_eq!(d.sync_interval(), Duration::from_millis(100));
        let c = SyncedClock::new(d, 5);
        let before = c.offset_ns();
        let _ = c.now(SimTime::from_millis(150));
        assert_ne!(before, c.offset_ns());
    }
}
