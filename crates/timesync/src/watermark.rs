//! Watermarks: a global lower bound on client clocks.
//!
//! Each client periodically broadcasts the timestamp of its last *decided*
//! operation; the minimum across clients is the watermark (§3.1, §4.4).
//! Because client clocks are monotonic, no client will ever issue a new
//! operation with a timestamp below the watermark, so storage servers may
//! discard every version of a key older than the youngest version at or
//! below the watermark.

use perfkit::FastMap;

use crate::version::{ClientId, Timestamp};

/// Tracks per-client progress timestamps and derives the watermark.
///
/// The watermark is only valid once *every* registered client has reported
/// at least once; before that it is pinned at [`Timestamp::ZERO`], which is
/// always safe (it retains everything).
///
/// # Examples
///
/// ```
/// use timesync::{ClientId, Timestamp, WatermarkTracker};
///
/// let mut w = WatermarkTracker::new([ClientId(0), ClientId(1)]);
/// w.update(ClientId(0), Timestamp(100));
/// assert_eq!(w.watermark(), Timestamp::ZERO); // client 1 not heard from
/// w.update(ClientId(1), Timestamp(70));
/// assert_eq!(w.watermark(), Timestamp(70));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WatermarkTracker {
    latest: FastMap<ClientId, Timestamp>,
}

impl WatermarkTracker {
    /// Creates a tracker expecting reports from the given clients.
    pub fn new(clients: impl IntoIterator<Item = ClientId>) -> WatermarkTracker {
        WatermarkTracker {
            latest: clients.into_iter().map(|c| (c, Timestamp::ZERO)).collect(),
        }
    }

    /// Registers a client after construction (starts at [`Timestamp::ZERO`],
    /// holding the watermark down until it reports).
    pub fn register(&mut self, client: ClientId) {
        self.latest.entry(client).or_insert(Timestamp::ZERO);
    }

    /// Removes a departed client so it no longer holds the watermark back.
    pub fn deregister(&mut self, client: ClientId) {
        self.latest.remove(&client);
    }

    /// Records a progress report. Stale (out-of-order) reports are ignored.
    pub fn update(&mut self, client: ClientId, ts: Timestamp) {
        let e = self.latest.entry(client).or_insert(Timestamp::ZERO);
        if ts > *e {
            *e = ts;
        }
    }

    /// Rehydrates the tracker from a durable floor record after a cold
    /// restart: every registered client is raised to at least `floor`.
    ///
    /// Sound because the floor was only recorded once every client had
    /// reported a timestamp `>= floor`, and client clocks are monotonic —
    /// a promise once made holds forever, even across the replica losing
    /// its RAM. Clients that reported higher before the crash simply
    /// re-report; the watermark never regresses below the floor.
    pub fn rehydrate(&mut self, floor: Timestamp) {
        for ts in self.latest.values_mut() {
            if floor > *ts {
                *ts = floor;
            }
        }
    }

    /// The current watermark: the minimum reported timestamp across clients,
    /// or [`Timestamp::MAX`] when no clients are registered.
    pub fn watermark(&self) -> Timestamp {
        self.latest
            .values()
            .copied()
            .min()
            .unwrap_or(Timestamp::MAX)
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// True when no clients are registered.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_is_minimum() {
        let mut w = WatermarkTracker::new([ClientId(0), ClientId(1), ClientId(2)]);
        w.update(ClientId(0), Timestamp(30));
        w.update(ClientId(1), Timestamp(10));
        w.update(ClientId(2), Timestamp(20));
        assert_eq!(w.watermark(), Timestamp(10));
    }

    #[test]
    fn stale_updates_ignored() {
        let mut w = WatermarkTracker::new([ClientId(0)]);
        w.update(ClientId(0), Timestamp(50));
        w.update(ClientId(0), Timestamp(40));
        assert_eq!(w.watermark(), Timestamp(50));
    }

    #[test]
    fn unreported_client_pins_watermark_to_zero() {
        let mut w = WatermarkTracker::new([ClientId(0), ClientId(1)]);
        w.update(ClientId(0), Timestamp(99));
        assert_eq!(w.watermark(), Timestamp::ZERO);
    }

    #[test]
    fn deregister_releases_watermark() {
        let mut w = WatermarkTracker::new([ClientId(0), ClientId(1)]);
        w.update(ClientId(0), Timestamp(99));
        w.deregister(ClientId(1));
        assert_eq!(w.watermark(), Timestamp(99));
    }

    #[test]
    fn empty_tracker_retains_nothing() {
        let w = WatermarkTracker::new([]);
        assert_eq!(w.watermark(), Timestamp::MAX);
        assert!(w.is_empty());
    }

    #[test]
    fn rehydrate_raises_every_client_to_the_floor() {
        let mut w = WatermarkTracker::new([ClientId(0), ClientId(1), ClientId(2)]);
        w.rehydrate(Timestamp(40));
        // No client has reported since the restart, yet the durable floor
        // already promises none will write below 40.
        assert_eq!(w.watermark(), Timestamp(40));
    }

    #[test]
    fn rehydrate_never_lowers_reports() {
        let mut w = WatermarkTracker::new([ClientId(0), ClientId(1)]);
        w.update(ClientId(0), Timestamp(100));
        w.rehydrate(Timestamp(40));
        assert_eq!(w.watermark(), Timestamp(40));
        w.update(ClientId(1), Timestamp(120));
        assert_eq!(w.watermark(), Timestamp(100));
    }

    #[test]
    fn watermark_monotonic_across_power_fail_mount_and_clock_step() {
        // Pre-failure: both clients reported, floor recorded at the min.
        let mut w = WatermarkTracker::new([ClientId(0), ClientId(1)]);
        w.update(ClientId(0), Timestamp(80));
        w.update(ClientId(1), Timestamp(60));
        let floor = w.watermark();
        assert_eq!(floor, Timestamp(60));
        // Power fail + cold mount: RAM state gone, tracker rebuilt from the
        // durable floor alone.
        let mut w = WatermarkTracker::new([ClientId(0), ClientId(1)]);
        w.rehydrate(floor);
        let mut last = w.watermark();
        assert_eq!(last, floor);
        // A clock step makes a client re-report an *older* local time; the
        // stale report must not drag the watermark below the floor.
        w.update(ClientId(0), Timestamp(55));
        assert!(w.watermark() >= last);
        // Normal progress resumes monotonically.
        for i in 0..50u64 {
            w.update(ClientId((i % 2) as u32), Timestamp(61 + i));
            assert!(w.watermark() >= last);
            last = w.watermark();
        }
    }

    #[test]
    fn watermark_is_monotonic_under_updates() {
        let mut w = WatermarkTracker::new([ClientId(0), ClientId(1)]);
        w.update(ClientId(0), Timestamp(5));
        w.update(ClientId(1), Timestamp(5));
        let mut last = w.watermark();
        for i in 0..100u64 {
            w.update(ClientId((i % 2) as u32), Timestamp(6 + i));
            assert!(w.watermark() >= last);
            last = w.watermark();
        }
    }
}
