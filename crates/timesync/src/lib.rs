//! # timesync — precision-time models for SEMEL/MILANA
//!
//! The paper's core premise is that IEEE 1588 PTP gives servers in one data
//! center sub-microsecond clock agreement, while NTP leaves millisecond-scale
//! skew — and that this difference decides whether optimistic concurrency
//! control over fast storage aborts rarely or often (§2.1, Figure 1).
//!
//! This crate provides:
//!
//! - [`Timestamp`] / [`Version`] — the `(timestamp, client_id)` version
//!   stamps SEMEL orders all writes by (§3);
//! - [`Discipline`] — calibrated skew models (`Perfect`, `PtpHardware`,
//!   `PtpSoftware`, `Ntp`) matching the magnitudes measured in §5.2;
//! - [`ClockSpec`] — a discipline plus fault knobs (drift rate), the single
//!   clock selection carried through cluster configs;
//! - [`SyncedClock`] — a per-client clock that maps *true* simulation time to
//!   that client's skewed-but-monotonic local time, with fault hooks for
//!   steps, persistent drift, holdover, and discipline downgrade;
//! - [`WatermarkTracker`] — the watermark lower bound on client clocks used
//!   for garbage collection (§3.1, §4.4).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod spec;
pub mod version;
pub mod watermark;

pub use clock::{Discipline, SyncedClock};
pub use spec::ClockSpec;
pub use version::{ClientId, Timestamp, Version};
pub use watermark::WatermarkTracker;
