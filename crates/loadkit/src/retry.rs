//! Client-side retry discipline: decorrelated-jitter backoff, a retry
//! budget, and per-shard circuit breakers.
//!
//! Overload is a closed loop: aborted or shed attempts come straight back
//! as retries, so past the saturation knee an unbudgeted client *amplifies*
//! load exactly when the servers can least afford it. [`RetryPolicy`]
//! breaks the loop three ways:
//!
//! 1. **Decorrelated jitter** — each backoff is drawn uniformly from
//!    `[base, 3 × previous]`, capped; retries de-synchronize instead of
//!    arriving in waves. All draws come from an explicitly seeded RNG, so
//!    runs are deterministic per seed.
//! 2. **Retry budget** — a token bucket: every *first* attempt deposits
//!    `budget_ratio` tokens, every retry spends one. Retry traffic is
//!    asymptotically capped at `budget_ratio` of first-attempt traffic
//!    (plus a small startup burst), no matter how many attempts fail.
//! 3. **Circuit breaker** — per shard: `breaker_threshold` consecutive
//!    sheds trip it open and requests fail fast without touching the
//!    network; after `breaker_cooldown` one probe is let through
//!    (half-open) and its outcome closes or re-opens the circuit.

use perfkit::FastMap;
use std::cell::{Cell, RefCell};
use std::time::Duration;

use obskit::{Counter, Obs, TraceEvent, Tracer};
use rand::rngs::StdRng;
use rand::Rng;

/// Tuning for one client's retry discipline.
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Minimum backoff (the jitter draw's lower bound).
    pub backoff_base: Duration,
    /// Maximum backoff (the jitter draw's cap).
    pub backoff_cap: Duration,
    /// Retry tokens deposited per first attempt; retries spend one each.
    pub budget_ratio: f64,
    /// Token-bucket ceiling (also the startup allowance).
    pub budget_burst: f64,
    /// Consecutive sheds from one shard that trip its breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before half-opening.
    pub breaker_cooldown: Duration,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            backoff_base: Duration::from_micros(500),
            backoff_cap: Duration::from_millis(25),
            budget_ratio: 0.2,
            budget_burst: 10.0,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(20),
        }
    }
}

/// Observable state of one shard's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests fail fast without touching the network.
    Open,
    /// One probe is in flight; its outcome decides open vs. closed.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
enum Breaker {
    Closed { consecutive: u32 },
    Open { until_ns: u64 },
    HalfOpen { since_ns: u64 },
}

/// One client's retry discipline. Cloning is not provided — each logical
/// client owns exactly one policy so the budget actually binds.
#[derive(Debug)]
pub struct RetryPolicy {
    cfg: RetryConfig,
    rng: RefCell<StdRng>,
    /// Previous jitter draw, nanoseconds (decorrelated-jitter state).
    prev_ns: Cell<u64>,
    tokens: Cell<f64>,
    breakers: RefCell<FastMap<u64, Breaker>>,
    client: u64,
    retries: Counter,
    budget_exhausted: Counter,
    breaker_trips: Counter,
    tracer: Tracer,
}

impl RetryPolicy {
    /// A policy with detached (unregistered) metrics and no tracing.
    pub fn new(cfg: RetryConfig, rng: StdRng) -> RetryPolicy {
        RetryPolicy::build(cfg, rng, &Obs::default(), u64::MAX, false)
    }

    /// A policy reporting into `obs` under `loadkit.client<client>.*`.
    pub fn observed(cfg: RetryConfig, rng: StdRng, obs: &Obs, client: u64) -> RetryPolicy {
        RetryPolicy::build(cfg, rng, obs, client, true)
    }

    fn build(cfg: RetryConfig, rng: StdRng, obs: &Obs, client: u64, register: bool) -> RetryPolicy {
        let (retries, budget_exhausted, breaker_trips) = if register {
            let p = format!("loadkit.client{client}");
            (
                obs.registry.counter(&format!("{p}.retries")),
                obs.registry.counter(&format!("{p}.budget_exhausted")),
                obs.registry.counter(&format!("{p}.breaker_trips")),
            )
        } else {
            (
                Counter::detached(),
                Counter::detached(),
                Counter::detached(),
            )
        };
        let burst = cfg.budget_burst.max(0.0);
        RetryPolicy {
            prev_ns: Cell::new(cfg.backoff_base.as_nanos() as u64),
            tokens: Cell::new(burst),
            cfg,
            rng: RefCell::new(rng),
            breakers: RefCell::new(FastMap::default()),
            client,
            retries,
            budget_exhausted,
            breaker_trips,
            tracer: obs.tracer.clone(),
        }
    }

    /// The configuration this policy runs under.
    pub fn config(&self) -> &RetryConfig {
        &self.cfg
    }

    /// Records one first attempt, depositing `budget_ratio` retry tokens
    /// (capped at `budget_burst`).
    pub fn on_attempt(&self) {
        let t = (self.tokens.get() + self.cfg.budget_ratio).min(self.cfg.budget_burst);
        self.tokens.set(t);
    }

    /// Asks permission to retry at virtual time `now_ns`. Returns the
    /// backoff to sleep before the retry, or `None` when the retry budget
    /// is exhausted — the caller must then give up (surface the failure),
    /// not spin. `hint` is the server's `retry_after`, respected as a
    /// floor on the returned delay.
    pub fn try_retry(&self, now_ns: u64, hint: Option<Duration>) -> Option<Duration> {
        let t = self.tokens.get();
        if t < 1.0 {
            self.budget_exhausted.inc();
            self.tracer.record(
                now_ns,
                TraceEvent::RetryBudgetExhausted {
                    client: self.client,
                },
            );
            return None;
        }
        self.tokens.set(t - 1.0);
        self.retries.inc();
        let base = self.cfg.backoff_base.as_nanos() as u64;
        let cap = self.cfg.backoff_cap.as_nanos() as u64;
        let hi = self
            .prev_ns
            .get()
            .saturating_mul(3)
            .clamp(base, cap.max(base));
        let jitter = self.rng.borrow_mut().gen_range(base..=hi.max(base));
        self.prev_ns.set(jitter);
        let delay = Duration::from_nanos(jitter).max(hint.unwrap_or(Duration::ZERO));
        Some(delay)
    }

    /// Retry tokens currently available (observability / tests).
    pub fn budget_tokens(&self) -> f64 {
        self.tokens.get()
    }

    /// True when requests to `shard` may be sent at `now_ns`. An open
    /// breaker fails fast; the transition to half-open admits exactly one
    /// probe per cooldown window.
    pub fn shard_allows(&self, shard: u64, now_ns: u64) -> bool {
        let mut breakers = self.breakers.borrow_mut();
        let b = breakers
            .entry(shard)
            .or_insert(Breaker::Closed { consecutive: 0 });
        match *b {
            Breaker::Closed { .. } => true,
            Breaker::Open { until_ns } => {
                if now_ns >= until_ns {
                    *b = Breaker::HalfOpen { since_ns: now_ns };
                    true
                } else {
                    false
                }
            }
            Breaker::HalfOpen { since_ns } => {
                // A probe whose outcome was never recorded (e.g. it timed
                // out) must not wedge the breaker: re-probe each cooldown.
                let cooldown = self.cfg.breaker_cooldown.as_nanos() as u64;
                if now_ns >= since_ns.saturating_add(cooldown) {
                    *b = Breaker::HalfOpen { since_ns: now_ns };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a shed from `shard`, tripping its breaker after
    /// `breaker_threshold` consecutive sheds (a half-open probe's shed
    /// re-opens immediately).
    pub fn record_shed(&self, shard: u64, now_ns: u64) {
        let cooldown = self.cfg.breaker_cooldown;
        let mut breakers = self.breakers.borrow_mut();
        let b = breakers
            .entry(shard)
            .or_insert(Breaker::Closed { consecutive: 0 });
        match *b {
            Breaker::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= self.cfg.breaker_threshold {
                    *b = Breaker::Open {
                        until_ns: now_ns.saturating_add(cooldown.as_nanos() as u64),
                    };
                    self.breaker_trips.inc();
                } else {
                    *b = Breaker::Closed { consecutive };
                }
            }
            Breaker::HalfOpen { .. } => {
                *b = Breaker::Open {
                    until_ns: now_ns.saturating_add(cooldown.as_nanos() as u64),
                };
                self.breaker_trips.inc();
            }
            Breaker::Open { .. } => {}
        }
    }

    /// Records a successful response from `shard`, closing its breaker.
    pub fn record_ok(&self, shard: u64) {
        self.breakers
            .borrow_mut()
            .insert(shard, Breaker::Closed { consecutive: 0 });
    }

    /// The observable state of `shard`'s breaker at `now_ns`.
    pub fn breaker_state(&self, shard: u64, now_ns: u64) -> BreakerState {
        match self.breakers.borrow().get(&shard) {
            None | Some(Breaker::Closed { .. }) => BreakerState::Closed,
            Some(Breaker::Open { until_ns }) => {
                if now_ns >= *until_ns {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
            Some(Breaker::HalfOpen { .. }) => BreakerState::HalfOpen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn policy(cfg: RetryConfig) -> RetryPolicy {
        RetryPolicy::new(cfg, StdRng::seed_from_u64(42))
    }

    #[test]
    fn same_seed_same_backoff_sequence() {
        let a = policy(RetryConfig::default());
        let b = policy(RetryConfig::default());
        for _ in 0..8 {
            a.on_attempt();
            b.on_attempt();
            assert_eq!(a.try_retry(0, None), b.try_retry(0, None));
        }
    }

    #[test]
    fn backoff_stays_within_base_and_cap() {
        let cfg = RetryConfig {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(10),
            budget_burst: 1000.0,
            ..RetryConfig::default()
        };
        let p = policy(cfg.clone());
        for _ in 0..200 {
            p.on_attempt();
            let d = p.try_retry(0, None).unwrap();
            assert!(d >= cfg.backoff_base, "{d:?}");
            assert!(d <= cfg.backoff_cap, "{d:?}");
        }
    }

    #[test]
    fn server_hint_floors_the_delay() {
        let p = policy(RetryConfig {
            backoff_cap: Duration::from_millis(2),
            ..RetryConfig::default()
        });
        p.on_attempt();
        let hint = Duration::from_millis(50);
        assert_eq!(p.try_retry(0, Some(hint)).unwrap(), hint);
    }

    #[test]
    fn budget_caps_retries_at_ratio_of_attempts() {
        let p = policy(RetryConfig {
            budget_ratio: 0.5,
            budget_burst: 2.0,
            ..RetryConfig::default()
        });
        // Startup burst: 2 tokens.
        assert!(p.try_retry(0, None).is_some());
        assert!(p.try_retry(0, None).is_some());
        assert!(p.try_retry(0, None).is_none());
        // Two first attempts deposit 0.5 each -> one more retry allowed.
        p.on_attempt();
        assert!(p.try_retry(0, None).is_none());
        p.on_attempt();
        assert!(p.try_retry(0, None).is_some());
        assert!(p.try_retry(0, None).is_none());
    }

    #[test]
    fn deposits_cap_at_burst() {
        let p = policy(RetryConfig {
            budget_ratio: 1.0,
            budget_burst: 3.0,
            ..RetryConfig::default()
        });
        for _ in 0..100 {
            p.on_attempt();
        }
        assert_eq!(p.budget_tokens(), 3.0);
    }

    #[test]
    fn breaker_trips_half_opens_and_recovers() {
        let cfg = RetryConfig {
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(10),
            ..RetryConfig::default()
        };
        let p = policy(cfg);
        let cd = Duration::from_millis(10).as_nanos() as u64;
        assert!(p.shard_allows(0, 0));
        p.record_shed(0, 0);
        p.record_shed(0, 0);
        assert!(p.shard_allows(0, 0), "below threshold stays closed");
        p.record_shed(0, 0);
        assert_eq!(p.breaker_state(0, 0), BreakerState::Open);
        assert!(!p.shard_allows(0, cd - 1));
        // Cooldown elapsed: exactly one probe allowed.
        assert!(p.shard_allows(0, cd));
        assert!(!p.shard_allows(0, cd + 1));
        // Probe succeeded -> closed again.
        p.record_ok(0);
        assert_eq!(p.breaker_state(0, cd + 2), BreakerState::Closed);
        assert!(p.shard_allows(0, cd + 2));
    }

    #[test]
    fn half_open_probe_shed_reopens() {
        let p = policy(RetryConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(1),
            ..RetryConfig::default()
        });
        p.record_shed(5, 0);
        let cd = 1_000_000u64;
        assert!(p.shard_allows(5, cd));
        p.record_shed(5, cd);
        assert_eq!(p.breaker_state(5, cd), BreakerState::Open);
    }

    #[test]
    fn lost_probe_does_not_wedge_the_breaker() {
        let p = policy(RetryConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(1),
            ..RetryConfig::default()
        });
        p.record_shed(5, 0);
        let cd = 1_000_000u64;
        assert!(p.shard_allows(5, cd)); // probe sent, outcome lost
        assert!(!p.shard_allows(5, cd + 1));
        assert!(p.shard_allows(5, 2 * cd), "re-probes after a cooldown");
    }

    #[test]
    fn breakers_are_per_shard() {
        let p = policy(RetryConfig {
            breaker_threshold: 1,
            ..RetryConfig::default()
        });
        p.record_shed(0, 0);
        assert!(!p.shard_allows(0, 0));
        assert!(p.shard_allows(1, 0));
    }

    #[test]
    fn observed_policy_reports_metrics_and_traces() {
        let obs = Obs::with_trace(16);
        let p = RetryPolicy::observed(
            RetryConfig {
                budget_burst: 1.0,
                breaker_threshold: 1,
                ..RetryConfig::default()
            },
            StdRng::seed_from_u64(1),
            &obs,
            3,
        );
        assert!(p.try_retry(0, None).is_some());
        assert!(p.try_retry(5, None).is_none());
        p.record_shed(2, 5);
        let snap = obs.registry.snapshot().to_string();
        assert!(snap.contains(r#""loadkit.client3.retries":1"#), "{snap}");
        assert!(
            snap.contains(r#""loadkit.client3.budget_exhausted":1"#),
            "{snap}"
        );
        assert!(
            snap.contains(r#""loadkit.client3.breaker_trips":1"#),
            "{snap}"
        );
        assert_eq!(obs.tracer.count_of("retry_budget_exhausted"), 1);
    }
}
