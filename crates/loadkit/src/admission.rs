//! Cost-aware bounded admission control for one server.
//!
//! Instead of an unbounded task queue, a server holds an [`Admission`]
//! gate: every request must [`Admission::try_admit`] a [`Permit`] of its
//! *cost* before any work happens, and the permit releases its cost on
//! drop (so cancellation and early returns can't leak capacity). Costs
//! let heavyweight operations (2PC prepares, replicated puts) claim more
//! of the budget than point reads — the staged, bounded-queue discipline
//! DTranx applies to transactional KV stores.
//!
//! Refused work is answered immediately with [`Shed::Overloaded`] (queue
//! full) or recorded as [`Shed::DeadlineExceeded`] (work arrived already
//! dead), both observable through obskit metrics and trace events.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use obskit::{Counter, Gauge, Obs, ShedReason, TraceEvent, Tracer};

use crate::shed::Shed;

/// Tuning for one server's admission gate.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum total in-flight admitted cost. Work pushing the sum past
    /// this is refused.
    pub capacity: u64,
    /// Backoff hint embedded in `Shed::Overloaded` replies.
    pub retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            // Generous: a 3-replica shard serving the paper's workloads
            // never sees this in-flight cost unless genuinely saturated.
            capacity: 256,
            retry_after: Duration::from_millis(2),
        }
    }
}

#[derive(Debug)]
struct State {
    in_flight: u64,
    high_water: u64,
    capacity: u64,
    retry_after: Duration,
    node: u64,
    admitted: Counter,
    sheds_overload: Counter,
    sheds_deadline: Counter,
    depth: Gauge,
    tracer: Tracer,
}

impl State {
    fn trace_depth(&self, now_ns: u64) {
        self.tracer.record(
            now_ns,
            TraceEvent::QueueDepth {
                node: self.node,
                cost: self.in_flight,
                capacity: self.capacity,
            },
        );
    }
}

/// One server's admission gate. Cloning shares the state.
#[derive(Debug, Clone)]
pub struct Admission {
    state: Rc<RefCell<State>>,
}

impl Admission {
    /// A gate with detached (unregistered) metrics and no tracing.
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission::build(cfg, &Obs::default(), u64::MAX, false)
    }

    /// A gate reporting into `obs` under `loadkit.node<node>.*`.
    pub fn observed(cfg: AdmissionConfig, obs: &Obs, node: u64) -> Admission {
        Admission::build(cfg, obs, node, true)
    }

    fn build(cfg: AdmissionConfig, obs: &Obs, node: u64, register: bool) -> Admission {
        let (admitted, sheds_overload, sheds_deadline, depth) = if register {
            let p = format!("loadkit.node{node}");
            (
                obs.registry.counter(&format!("{p}.admitted")),
                obs.registry.counter(&format!("{p}.sheds_overload")),
                obs.registry.counter(&format!("{p}.sheds_deadline")),
                obs.registry.gauge(&format!("{p}.queue_cost")),
            )
        } else {
            (
                Counter::detached(),
                Counter::detached(),
                Counter::detached(),
                Gauge::detached(),
            )
        };
        Admission {
            state: Rc::new(RefCell::new(State {
                in_flight: 0,
                high_water: 0,
                capacity: cfg.capacity.max(1),
                retry_after: cfg.retry_after,
                node,
                admitted,
                sheds_overload,
                sheds_deadline,
                depth,
                tracer: obs.tracer.clone(),
            })),
        }
    }

    /// Tries to admit work of `cost`. On success the returned [`Permit`]
    /// holds the cost until dropped; on refusal the caller should reply
    /// with the returned [`Shed`] instead of doing the work.
    ///
    /// Trace volume is bounded: `QueueDepth` is emitted only when the
    /// in-flight cost reaches a new high-water mark or a shed happens,
    /// never per admit.
    pub fn try_admit(&self, now_ns: u64, cost: u64) -> Result<Permit, Shed> {
        let cost = cost.max(1);
        let mut s = self.state.borrow_mut();
        if s.in_flight + cost > s.capacity {
            s.sheds_overload.inc();
            let shed = Shed::Overloaded {
                retry_after: s.retry_after,
            };
            s.tracer.record(
                now_ns,
                TraceEvent::Shed {
                    node: s.node,
                    reason: ShedReason::Overloaded,
                },
            );
            s.trace_depth(now_ns);
            return Err(shed);
        }
        s.in_flight += cost;
        s.admitted.inc();
        s.depth.set(s.in_flight as i64);
        if s.in_flight > s.high_water {
            s.high_water = s.in_flight;
            s.trace_depth(now_ns);
        }
        drop(s);
        Ok(Permit {
            state: self.state.clone(),
            cost,
        })
    }

    /// Tries to admit a coalesced batch as one unit, charging the sum of
    /// the per-item `costs` (each clamped to ≥ 1, like [`Admission::try_admit`])
    /// against the single envelope. The batch is admitted or refused
    /// atomically: partial admission would let a shed envelope do part of
    /// its work, which the per-item reply contract does not allow.
    ///
    /// An empty batch admits at cost 0 (the permit is a no-op).
    pub fn try_admit_batch(&self, now_ns: u64, costs: &[u64]) -> Result<Permit, Shed> {
        if costs.is_empty() {
            return Ok(Permit {
                state: self.state.clone(),
                cost: 0,
            });
        }
        let total: u64 = costs.iter().map(|c| (*c).max(1)).sum();
        let mut s = self.state.borrow_mut();
        if s.in_flight + total > s.capacity {
            s.sheds_overload.inc();
            let shed = Shed::Overloaded {
                retry_after: s.retry_after,
            };
            s.tracer.record(
                now_ns,
                TraceEvent::Shed {
                    node: s.node,
                    reason: ShedReason::Overloaded,
                },
            );
            s.trace_depth(now_ns);
            return Err(shed);
        }
        s.in_flight += total;
        s.admitted.add(costs.len() as u64);
        s.depth.set(s.in_flight as i64);
        if s.in_flight > s.high_water {
            s.high_water = s.in_flight;
            s.trace_depth(now_ns);
        }
        drop(s);
        Ok(Permit {
            state: self.state.clone(),
            cost: total,
        })
    }

    /// Records a deadline-expired refusal (the deadline check itself lives
    /// at the server, which owns the request envelope).
    pub fn shed_deadline(&self, now_ns: u64) -> Shed {
        let s = self.state.borrow();
        s.sheds_deadline.inc();
        s.tracer.record(
            now_ns,
            TraceEvent::Shed {
                node: s.node,
                reason: ShedReason::DeadlineExceeded,
            },
        );
        Shed::DeadlineExceeded
    }

    /// Current in-flight admitted cost.
    pub fn in_flight(&self) -> u64 {
        self.state.borrow().in_flight
    }

    /// Highest in-flight cost ever admitted.
    pub fn high_water(&self) -> u64 {
        self.state.borrow().high_water
    }

    /// Total refusals (both reasons).
    pub fn sheds(&self) -> u64 {
        let s = self.state.borrow();
        s.sheds_overload.get() + s.sheds_deadline.get()
    }
}

/// Admitted capacity, released on drop.
#[derive(Debug)]
pub struct Permit {
    state: Rc<RefCell<State>>,
    cost: u64,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.in_flight = s.in_flight.saturating_sub(self.cost);
        s.depth.set(s.in_flight as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(capacity: u64) -> Admission {
        Admission::new(AdmissionConfig {
            capacity,
            ..AdmissionConfig::default()
        })
    }

    #[test]
    fn admits_until_cost_capacity() {
        let a = gate(4);
        let p1 = a.try_admit(0, 1).unwrap();
        let p2 = a.try_admit(0, 2).unwrap();
        assert_eq!(a.in_flight(), 3);
        // cost 2 would exceed 4.
        let refused = a.try_admit(0, 2).unwrap_err();
        assert!(matches!(refused, Shed::Overloaded { .. }));
        // cost 1 still fits.
        let p3 = a.try_admit(0, 1).unwrap();
        drop((p1, p2, p3));
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.sheds(), 1);
    }

    #[test]
    fn permit_drop_releases_even_mid_burst() {
        let a = gate(2);
        let p = a.try_admit(0, 2).unwrap();
        assert!(a.try_admit(0, 1).is_err());
        drop(p);
        assert!(a.try_admit(0, 2).is_ok());
    }

    #[test]
    fn heavyweight_cost_starves_before_reads() {
        let a = gate(8);
        let _reads: Vec<Permit> = (0..6).map(|_| a.try_admit(0, 1).unwrap()).collect();
        // A prepare at cost 4 no longer fits although reads at cost 1 do.
        assert!(a.try_admit(0, 4).is_err());
        assert!(a.try_admit(0, 1).is_ok());
    }

    #[test]
    fn zero_cost_is_clamped_to_one() {
        let a = gate(1);
        let _p = a.try_admit(0, 0).unwrap();
        assert_eq!(a.in_flight(), 1);
        assert!(a.try_admit(0, 0).is_err());
    }

    #[test]
    fn batch_admission_is_all_or_nothing() {
        let a = gate(8);
        // 3 + 1 + 4 = 8 fits exactly; zero cost clamps to 1.
        let p = a.try_admit_batch(0, &[3, 0, 4]).unwrap();
        assert_eq!(a.in_flight(), 8);
        // Even a single extra item is refused while the batch is in flight.
        assert!(a.try_admit_batch(0, &[1]).is_err());
        drop(p);
        assert_eq!(a.in_flight(), 0);
        // A batch whose sum exceeds capacity is refused whole: nothing leaks.
        assert!(a.try_admit_batch(0, &[4, 5]).is_err());
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.sheds(), 2);
    }

    #[test]
    fn empty_batch_admits_for_free() {
        let a = gate(1);
        let _full = a.try_admit(0, 1).unwrap();
        let p = a.try_admit_batch(0, &[]).unwrap();
        assert_eq!(a.in_flight(), 1);
        drop(p);
        assert_eq!(a.in_flight(), 1);
    }

    #[test]
    fn observed_gate_reports_metrics_and_traces() {
        let obs = Obs::with_trace(64);
        let a = Admission::observed(
            AdmissionConfig {
                capacity: 1,
                retry_after: Duration::from_millis(3),
            },
            &obs,
            7,
        );
        let p = a.try_admit(10, 1).unwrap();
        let refused = a.try_admit(20, 1).unwrap_err();
        assert_eq!(
            refused,
            Shed::Overloaded {
                retry_after: Duration::from_millis(3)
            }
        );
        assert_eq!(a.shed_deadline(30), Shed::DeadlineExceeded);
        drop(p);
        let snap = obs.registry.snapshot().to_string();
        assert!(snap.contains(r#""loadkit.node7.admitted":1"#), "{snap}");
        assert!(
            snap.contains(r#""loadkit.node7.sheds_overload":1"#),
            "{snap}"
        );
        assert!(
            snap.contains(r#""loadkit.node7.sheds_deadline":1"#),
            "{snap}"
        );
        assert!(snap.contains(r#""loadkit.node7.queue_cost":0"#), "{snap}");
        assert_eq!(obs.tracer.count_of("shed"), 2);
        // One high-water advance + one on the shed.
        assert_eq!(obs.tracer.count_of("queue_depth"), 2);
    }

    #[test]
    fn queue_depth_traces_only_on_high_water_advance() {
        let obs = Obs::with_trace(64);
        let a = Admission::observed(AdmissionConfig::default(), &obs, 1);
        for _ in 0..10 {
            let p = a.try_admit(0, 1).unwrap();
            drop(p);
        }
        // Depth oscillates 0->1->0; only the first advance traces.
        assert_eq!(obs.tracer.count_of("queue_depth"), 1);
        assert_eq!(a.high_water(), 1);
    }
}
