//! # loadkit — deterministic overload control for the MILANA reproduction
//!
//! The paper evaluates MILANA/SEMEL at saturation (§5, Figs. 6–9), where
//! abort–retry loops multiply offered load. Without admission control a
//! retry storm past the knee collapses goodput metastably instead of
//! degrading it. `loadkit` is the overload-control layer threaded through
//! the whole RPC plane:
//!
//! - [`shed`] — the [`shed::Shed`] refusal type servers reply with instead
//!   of silently queueing work they cannot finish;
//! - [`admission`] — cost-aware bounded admission ([`admission::Admission`]):
//!   each in-flight request holds a [`admission::Permit`] of its cost
//!   (prepares weigh more than reads) and work beyond the configured
//!   capacity is refused with `Shed::Overloaded { retry_after }`;
//! - [`retry`] — the client side ([`retry::RetryPolicy`]): exponential
//!   backoff with decorrelated jitter drawn from a seeded RNG, a retry
//!   *budget* capping retries at a fixed fraction of first-attempt
//!   traffic, and a per-shard circuit breaker that trips on consecutive
//!   sheds and half-opens after a cooldown.
//!
//! Deadlines ride in the RPC envelope itself (`simkit::rpc::Deadline`);
//! loadkit stays below simkit in the dependency order — all time here is
//! plain nanosecond integers and `Duration`s, all randomness an explicitly
//! seeded `StdRng` — so every decision is deterministic per seed and
//! observable through `obskit` metrics and trace events.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod retry;
pub mod shed;

pub use admission::{Admission, AdmissionConfig, Permit};
pub use retry::{BreakerState, RetryConfig, RetryPolicy};
pub use shed::Shed;
