//! The refusal a server sends instead of doing work it cannot finish.

use std::time::Duration;

use obskit::ShedReason;

/// Why a server refused a request. Embedded in each protocol's response
/// enum (`SemelResponse::Shed`, `TxnResponse::Shed`) so refusals are an
/// explicit, typed outcome — never a silent queue or a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The admission queue was at capacity; retry no sooner than the hint.
    Overloaded {
        /// Server's backoff hint for the retrying client.
        retry_after: Duration,
    },
    /// The request's deadline had already expired when the server looked
    /// at it — doing the work could only waste capacity on a reply the
    /// caller has stopped waiting for.
    DeadlineExceeded,
}

impl Shed {
    /// The normalized reason (obskit's trace taxonomy).
    pub fn reason(self) -> ShedReason {
        match self {
            Shed::Overloaded { .. } => ShedReason::Overloaded,
            Shed::DeadlineExceeded => ShedReason::DeadlineExceeded,
        }
    }

    /// The server's backoff hint, when it gave one.
    pub fn retry_after(self) -> Option<Duration> {
        match self {
            Shed::Overloaded { retry_after } => Some(retry_after),
            Shed::DeadlineExceeded => None,
        }
    }
}

impl std::fmt::Display for Shed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Shed::Overloaded { retry_after } => {
                write!(f, "overloaded (retry after {retry_after:?})")
            }
            Shed::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_maps_to_obskit_taxonomy() {
        let s = Shed::Overloaded {
            retry_after: Duration::from_millis(2),
        };
        assert_eq!(s.reason().as_str(), "overloaded");
        assert_eq!(s.retry_after(), Some(Duration::from_millis(2)));
        assert_eq!(
            Shed::DeadlineExceeded.reason().as_str(),
            "deadline_exceeded"
        );
        assert_eq!(Shed::DeadlineExceeded.retry_after(), None);
    }
}
