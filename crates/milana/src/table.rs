//! The primary's transaction table and per-key concurrency metadata, with
//! the paper's validation procedure (Algorithm 1).
//!
//! Per active key the primary tracks, in DRAM (§4.1):
//!
//! - `ts_latestRead` — the largest read timestamp served (protects
//!   client-local validation of read-only transactions, §4.3);
//! - `prepared` — the prepared-but-undecided transaction holding the key;
//! - the latest *committed* version, read directly from the storage
//!   backend's in-DRAM mapping table.
//!
//! None of this is persisted; §4.5 recovers it (or shields it with leases).

use perfkit::{FastMap, FastSet};

use flashsim::Key;
use timesync::{Timestamp, Version};

use crate::msg::{TxnId, TxnRecord, TxnStatus};

/// Per-key DRAM metadata.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyMeta {
    /// Largest read timestamp served for this key.
    pub latest_read: Timestamp,
    /// The prepared transaction holding this key, if any, with its
    /// tentative commit timestamp.
    pub prepared: Option<(TxnId, Timestamp)>,
}

/// Validation verdict with the conflict that caused an abort, for
/// observability and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The transaction serializes; prepare it.
    Success,
    /// A read-set key is held by a prepared transaction.
    ReadSawPrepared(Key),
    /// A read-set key's latest committed version is not the one read.
    ReadStale(Key),
    /// A write-set key is held by a prepared transaction.
    WriteSawPrepared(Key),
    /// A write-set key was read at a timestamp at/after our commit stamp.
    WriteAfterRead(Key),
    /// A write-set key already has a committed version at/after our stamp.
    WriteStale(Key),
}

impl Verdict {
    /// True for [`Verdict::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, Verdict::Success)
    }
}

/// The transaction table plus key metadata for one shard primary.
#[derive(Debug, Default)]
pub struct TxnTable {
    records: FastMap<TxnId, TxnRecord>,
    keys: FastMap<Key, KeyMeta>,
    /// Committed transactions whose writes this replica has already made
    /// durable in its own backend. Lives in persistent memory with the
    /// records, so recovery and log installation apply only the delta
    /// instead of replaying the whole committed history (which grows
    /// without bound and would make failover time scale with table size).
    applied: FastSet<TxnId>,
    /// Applied watermark: the highest timestamp below which this replica's
    /// version chains are known complete, so a snapshot read at any
    /// `at < applied_wm` can be served here (readkit). Monotone by
    /// construction, and stored with the records in persistent memory so
    /// it survives restarts instead of regressing.
    applied_wm: Timestamp,
}

impl TxnTable {
    /// Creates an empty table.
    pub fn new() -> TxnTable {
        TxnTable::default()
    }

    /// Records a read at `ts`, returning whether a prepared version with
    /// timestamp `<= ts` exists (the flag piggybacked on gets, §4.3).
    pub fn note_read(&mut self, key: &Key, ts: Timestamp) -> bool {
        let meta = self.keys.entry(key.clone()).or_default();
        if ts > meta.latest_read {
            meta.latest_read = ts;
        }
        meta.prepared.is_some_and(|(_, pts)| pts <= ts)
    }

    /// Algorithm 1: validates `txid` against the table. `latest_committed`
    /// maps a key to its newest committed version (from the storage
    /// backend's mapping table).
    ///
    /// Does **not** mutate state; call [`TxnTable::prepare`] on success.
    pub fn validate(
        &self,
        reads: &[(Key, Version)],
        writes: &[Key],
        ts_commit: Timestamp,
        latest_committed: impl Fn(&Key) -> Option<Version>,
    ) -> Verdict {
        for (key, version) in reads {
            if let Some(meta) = self.keys.get(key) {
                if meta.prepared.is_some() {
                    return Verdict::ReadSawPrepared(key.clone());
                }
            }
            if latest_committed(key) != Some(*version) {
                return Verdict::ReadStale(key.clone());
            }
        }
        for key in writes {
            if let Some(meta) = self.keys.get(key) {
                if meta.prepared.is_some() {
                    return Verdict::WriteSawPrepared(key.clone());
                }
                if meta.latest_read >= ts_commit {
                    return Verdict::WriteAfterRead(key.clone());
                }
            }
            if let Some(v) = latest_committed(key) {
                if v.ts >= ts_commit {
                    return Verdict::WriteStale(key.clone());
                }
            }
        }
        Verdict::Success
    }

    /// Installs a prepared record and marks its write keys held.
    ///
    /// # Panics
    ///
    /// Panics if the transaction is already in the table.
    pub fn prepare(&mut self, record: TxnRecord) {
        assert_eq!(record.status, TxnStatus::Prepared);
        for (key, _) in record.writes.iter() {
            let meta = self.keys.entry(key.clone()).or_default();
            debug_assert!(meta.prepared.is_none(), "double prepare on {key}");
            meta.prepared = Some((record.txid, record.ts_commit));
        }
        let prev = self.records.insert(record.txid, record);
        assert!(prev.is_none(), "transaction prepared twice");
    }

    /// Applies a commit/abort decision, releasing the write keys. Returns
    /// the record (now with final status) if it was prepared here; `None`
    /// for unknown transactions (e.g. decision arrived before/without a
    /// prepare — the caller records it for idempotence).
    pub fn decide(&mut self, txid: TxnId, commit: bool) -> Option<TxnRecord> {
        let record = self.records.get_mut(&txid)?;
        if record.status != TxnStatus::Prepared {
            // Duplicate decision; idempotent.
            return Some(record.clone());
        }
        record.status = if commit {
            TxnStatus::Committed
        } else {
            TxnStatus::Aborted
        };
        let record = record.clone();
        for (key, _) in record.writes.iter() {
            if let Some(meta) = self.keys.get_mut(key) {
                if meta.prepared.map(|(t, _)| t) == Some(txid) {
                    meta.prepared = None;
                }
            }
        }
        Some(record)
    }

    /// Status of `txid` for recovery/CTP queries.
    pub fn status(&self, txid: TxnId) -> Option<TxnStatus> {
        self.records.get(&txid).map(|r| r.status)
    }

    /// The record for `txid`, if present.
    pub fn record(&self, txid: TxnId) -> Option<&TxnRecord> {
        self.records.get(&txid)
    }

    /// Inserts or overwrites a record, maintaining the key `prepared`
    /// markers (used by backups and by log installation). Backups need the
    /// markers live — not just rebuilt at recovery — because backup
    /// snapshot reads piggyback the same prepared flag as primary gets.
    pub fn install(&mut self, record: TxnRecord) {
        match self.records.get_mut(&record.txid) {
            // Never regress a decided status back to Prepared.
            Some(existing) if existing.status != TxnStatus::Prepared => {}
            _ => {
                match record.status {
                    TxnStatus::Prepared => {
                        for (key, _) in record.writes.iter() {
                            self.keys.entry(key.clone()).or_default().prepared =
                                Some((record.txid, record.ts_commit));
                        }
                    }
                    _ => {
                        for (key, _) in record.writes.iter() {
                            if let Some(meta) = self.keys.get_mut(key) {
                                if meta.prepared.map(|(t, _)| t) == Some(record.txid) {
                                    meta.prepared = None;
                                }
                            }
                        }
                    }
                }
                self.records.insert(record.txid, record);
            }
        }
    }

    /// This replica's applied watermark (see the field docs).
    pub fn applied_watermark(&self) -> Timestamp {
        self.applied_wm
    }

    /// Raises the applied watermark; lower values are ignored so the
    /// watermark never regresses (late or replayed floor records must not
    /// shrink the servable window).
    pub fn advance_applied_watermark(&mut self, ts: Timestamp) {
        if ts > self.applied_wm {
            self.applied_wm = ts;
        }
    }

    /// Marks `txid`'s committed writes as durably applied to this
    /// replica's backend. Call only *after* the backend apply completes —
    /// a crash in between re-applies the record at recovery, which is
    /// idempotent.
    pub fn mark_applied(&mut self, txid: TxnId) {
        self.applied.insert(txid);
    }

    /// Whether `txid`'s writes are already in this replica's backend.
    pub fn is_applied(&self, txid: TxnId) -> bool {
        self.applied.contains(&txid)
    }

    /// All records (for log transfer), in transaction-id order so message
    /// schedules stay deterministic.
    pub fn all_records(&self) -> Vec<TxnRecord> {
        let mut v: Vec<TxnRecord> = self.records.values().cloned().collect();
        v.sort_by_key(|r| r.txid);
        v
    }

    /// Prepared transactions older than `than` (by commit stamp) — CTP
    /// candidates whose coordinator may have died (§4.5).
    pub fn stuck_prepared(&self, than: Timestamp) -> Vec<TxnRecord> {
        let mut v: Vec<TxnRecord> = self
            .records
            .values()
            .filter(|r| r.status == TxnStatus::Prepared && r.ts_commit < than)
            .cloned()
            .collect();
        v.sort_by_key(|r| r.txid);
        v
    }

    /// Rebuilds key `prepared` markers from the (merged) records — the
    /// final step of recovery before serving (§4.5).
    pub fn rebuild_key_meta(&mut self) {
        self.keys.clear();
        let prepared: Vec<(TxnId, Timestamp, Vec<Key>)> = self
            .records
            .values()
            .filter(|r| r.status == TxnStatus::Prepared)
            .map(|r| {
                (
                    r.txid,
                    r.ts_commit,
                    r.writes.iter().map(|(k, _)| k.clone()).collect(),
                )
            })
            .collect();
        for (txid, ts, keys) in prepared {
            for key in keys {
                self.keys.entry(key).or_default().prepared = Some((txid, ts));
            }
        }
    }

    /// Number of records in the table.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no transactions are recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semel::shard::ShardId;
    use timesync::ClientId;

    fn k(i: u64) -> Key {
        Key::from(i)
    }

    fn v(ts: u64) -> Version {
        Version::new(Timestamp(ts), ClientId(0))
    }

    fn txid(seq: u64) -> TxnId {
        TxnId {
            client: ClientId(1),
            seq,
        }
    }

    fn record(seq: u64, ts: u64, write_keys: &[u64]) -> TxnRecord {
        TxnRecord {
            txid: txid(seq),
            ts_commit: Timestamp(ts),
            writes: write_keys
                .iter()
                .map(|&i| (k(i), flashsim::value(&b"w"[..])))
                .collect::<Vec<_>>()
                .into(),
            participants: vec![ShardId(0)].into(),
            status: TxnStatus::Prepared,
        }
    }

    /// `latest_committed` stub: every key at version ts=10.
    fn lc10(_: &Key) -> Option<Version> {
        Some(v(10))
    }

    #[test]
    fn clean_read_write_validates() {
        let t = TxnTable::new();
        let verdict = t.validate(&[(k(1), v(10))], &[k(2)], Timestamp(20), lc10);
        assert_eq!(verdict, Verdict::Success);
    }

    #[test]
    fn stale_read_aborts() {
        let t = TxnTable::new();
        // The key's latest committed version (ts=10) is newer than what the
        // transaction read (ts=5): someone committed in between.
        let verdict = t.validate(&[(k(1), v(5))], &[], Timestamp(20), lc10);
        assert_eq!(verdict, Verdict::ReadStale(k(1)));
    }

    #[test]
    fn prepared_key_blocks_reads_and_writes() {
        let mut t = TxnTable::new();
        t.prepare(record(1, 15, &[7]));
        let verdict = t.validate(&[(k(7), v(10))], &[], Timestamp(20), lc10);
        assert_eq!(verdict, Verdict::ReadSawPrepared(k(7)));
        let verdict = t.validate(&[], &[k(7)], Timestamp(20), lc10);
        assert_eq!(verdict, Verdict::WriteSawPrepared(k(7)));
    }

    #[test]
    fn write_after_read_aborts() {
        let mut t = TxnTable::new();
        // Someone read key 3 at ts=25 (e.g. a read-only transaction that
        // will locally validate); a write with ts_commit=20 <= 25 must die.
        assert!(!t.note_read(&k(3), Timestamp(25)));
        let verdict = t.validate(&[], &[k(3)], Timestamp(20), lc10);
        assert_eq!(verdict, Verdict::WriteAfterRead(k(3)));
        // Equal timestamps also abort (Algorithm 1 line 13 uses >=).
        let verdict = t.validate(&[], &[k(3)], Timestamp(25), lc10);
        assert_eq!(verdict, Verdict::WriteAfterRead(k(3)));
        // A later write is fine.
        let verdict = t.validate(&[], &[k(3)], Timestamp(26), lc10);
        assert_eq!(verdict, Verdict::Success);
    }

    #[test]
    fn write_stale_aborts() {
        let t = TxnTable::new();
        // Key already committed at ts=10; writing at ts_commit=10 or 9 dies.
        assert_eq!(
            t.validate(&[], &[k(1)], Timestamp(10), lc10),
            Verdict::WriteStale(k(1))
        );
        assert_eq!(
            t.validate(&[], &[k(1)], Timestamp(9), lc10),
            Verdict::WriteStale(k(1))
        );
        assert!(t.validate(&[], &[k(1)], Timestamp(11), lc10).is_success());
    }

    #[test]
    fn decide_releases_keys() {
        let mut t = TxnTable::new();
        t.prepare(record(1, 15, &[7]));
        let rec = t.decide(txid(1), true).unwrap();
        assert_eq!(rec.status, TxnStatus::Committed);
        // Key free again.
        assert!(t.validate(&[], &[k(7)], Timestamp(20), lc10).is_success());
        // Duplicate decision is idempotent.
        let again = t.decide(txid(1), true).unwrap();
        assert_eq!(again.status, TxnStatus::Committed);
    }

    #[test]
    fn note_read_reports_prepared_leq() {
        let mut t = TxnTable::new();
        t.prepare(record(1, 15, &[7]));
        assert!(!t.note_read(&k(7), Timestamp(10))); // prepared at 15 > 10
        assert!(t.note_read(&k(7), Timestamp(15))); // 15 <= 15
        assert!(t.note_read(&k(7), Timestamp(30)));
    }

    #[test]
    fn stuck_prepared_finds_old_transactions() {
        let mut t = TxnTable::new();
        t.prepare(record(1, 15, &[1]));
        t.prepare(record(2, 50, &[2]));
        t.decide(txid(1), false);
        t.prepare(record(3, 10, &[3]));
        let stuck = t.stuck_prepared(Timestamp(40));
        let ids: Vec<u64> = stuck.iter().map(|r| r.txid.seq).collect();
        assert_eq!(ids.len(), 1);
        assert!(ids.contains(&3));
    }

    #[test]
    fn rebuild_key_meta_restores_prepared_markers() {
        let mut t = TxnTable::new();
        t.install(record(1, 15, &[7]));
        let mut decided = record(2, 16, &[8]);
        decided.status = TxnStatus::Committed;
        t.install(decided);
        t.rebuild_key_meta();
        assert!(!t.validate(&[], &[k(7)], Timestamp(99), lc10).is_success());
        assert!(t.validate(&[], &[k(8)], Timestamp(99), lc10).is_success());
    }

    #[test]
    fn applied_watermark_is_monotone() {
        let mut t = TxnTable::new();
        assert_eq!(t.applied_watermark(), Timestamp::ZERO);
        t.advance_applied_watermark(Timestamp(40));
        assert_eq!(t.applied_watermark(), Timestamp(40));
        // A late, lower floor (replayed gossip, clock step) is ignored.
        t.advance_applied_watermark(Timestamp(25));
        assert_eq!(t.applied_watermark(), Timestamp(40));
        t.advance_applied_watermark(Timestamp(41));
        assert_eq!(t.applied_watermark(), Timestamp(41));
    }

    #[test]
    fn install_maintains_prepared_markers() {
        let mut t = TxnTable::new();
        // A replicated prepare marks the key held immediately (backup reads
        // must see the prepared flag without waiting for a recovery-time
        // rebuild) …
        t.install(record(1, 15, &[7]));
        assert!(t.note_read(&k(7), Timestamp(20)));
        // … and the replicated decision releases it.
        let mut decided = record(1, 15, &[7]);
        decided.status = TxnStatus::Committed;
        t.install(decided);
        assert!(!t.note_read(&k(7), Timestamp(20)));
    }

    #[test]
    fn install_never_regresses_decided_status() {
        let mut t = TxnTable::new();
        let mut committed = record(1, 15, &[1]);
        committed.status = TxnStatus::Committed;
        t.install(committed);
        t.install(record(1, 15, &[1])); // late Prepared replica record
        assert_eq!(t.status(txid(1)), Some(TxnStatus::Committed));
    }
}
