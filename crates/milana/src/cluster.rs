//! Harness that boots a full MILANA deployment inside a simulation —
//! sharded, replicated transaction servers plus clients — with fault
//! injection helpers (primary failover, replica restart) acting as the
//! paper's "global master".

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use flashsim::{value, Backend, BackendKind, Key, NandConfig};
use semel::shard::{ReplicaGroup, ShardId, ShardMap};
use simkit::net::{Addr, NodeId};
use simkit::rpc::RpcClient;
use simkit::SimHandle;
use timesync::{ClientId, ClockSpec, Timestamp, Version};

use crate::client::{TxnClient, TxnClientConfig};
use crate::msg::{PromoteError, TxnRequest, TxnResponse};
use crate::server::{ServerTuning, TxnServer, TxnServerConfig};
use crate::table::TxnTable;

/// Deployment shape and substrate parameters.
#[derive(Debug, Clone)]
pub struct MilanaClusterConfig {
    /// Number of data shards.
    pub shards: u32,
    /// Replicas per shard (odd: 1 primary + 2f backups).
    pub replicas: u32,
    /// Number of clients.
    pub clients: u32,
    /// Storage backend kind.
    pub backend: BackendKind,
    /// Device geometry for flash backends.
    pub nand: NandConfig,
    /// Client clock model (discipline plus fault knobs).
    pub clock: ClockSpec,
    /// Keys preloaded as ids `0..preload_keys`.
    pub preload_keys: u64,
    /// Preloaded value size.
    pub value_size: usize,
    /// Client tuning.
    pub client_cfg: TxnClientConfig,
    /// Server tuning.
    pub tuning: ServerTuning,
    /// Network latency model installed at build time.
    pub net: simkit::net::LatencyConfig,
    /// When true, a master service runs with heartbeat failure detection
    /// and **automatic** failover; each client keeps a private shard map
    /// refreshed from the master. When false, the harness owns failover
    /// ([`MilanaCluster::promote_backup`]) and all clients share one map.
    pub auto_failover: bool,
}

impl From<semel::ClusterSpec> for MilanaClusterConfig {
    fn from(spec: semel::ClusterSpec) -> MilanaClusterConfig {
        let mut cfg = MilanaClusterConfig {
            shards: spec.shards,
            replicas: spec.replicas,
            clients: spec.clients,
            backend: spec.backend,
            nand: spec.nand,
            clock: spec.clock,
            preload_keys: spec.preload_keys,
            value_size: spec.value_size,
            net: spec.net,
            ..MilanaClusterConfig::default()
        };
        cfg.tuning.admission = spec.admission;
        cfg.tuning.batch = spec.batch;
        cfg.tuning.obs = spec.obs;
        cfg.tuning.gossip_every = spec.watermark_gossip;
        cfg.client_cfg.batch = spec.batch;
        cfg.client_cfg.obs = cfg.tuning.obs.clone();
        cfg.client_cfg.read_route = spec.read_route;
        cfg.client_cfg.cache_entries = spec.cache_entries;
        cfg
    }
}

impl Default for MilanaClusterConfig {
    fn default() -> MilanaClusterConfig {
        MilanaClusterConfig {
            shards: 1,
            replicas: 3,
            clients: 2,
            backend: BackendKind::Mftl,
            nand: NandConfig::default(),
            clock: ClockSpec::ptp_software(),
            preload_keys: 0,
            value_size: 472,
            client_cfg: TxnClientConfig::default(),
            tuning: ServerTuning::default(),
            net: simkit::net::LatencyConfig::default(),
            auto_failover: false,
        }
    }
}

/// One replica slot: the running server plus the persistent handles needed
/// to restart it after a crash.
#[derive(Debug)]
pub struct ReplicaSlot {
    /// The running server (handle remains valid even if its node is dead).
    pub server: TxnServer,
    /// The replica's service address.
    pub addr: Addr,
}

/// A running MILANA deployment.
#[derive(Debug)]
pub struct MilanaCluster {
    /// Shared shard map (the master's view; mutated on failover). With
    /// `auto_failover`, clients hold *private* copies refreshed from the
    /// [`MilanaCluster::master`] service instead.
    pub map: Rc<RefCell<ShardMap>>,
    /// The master service, when `auto_failover` is enabled.
    pub master: Option<semel::master::Master>,
    /// Clients.
    pub clients: Vec<TxnClient>,
    /// Replica slots, `[shard][replica]`; index 0 is the initial primary.
    pub replicas: Vec<Vec<ReplicaSlot>>,
    /// The harness's own RPC endpoint (the "master").
    pub master_rpc: RpcClient,
    /// Build configuration.
    pub config: MilanaClusterConfig,
    /// Replicas whose last failure was a power failure (backend volatile
    /// state torn): these must restart cold, never warm.
    power_failed: RefCell<std::collections::BTreeSet<(u32, usize)>>,
    handle: SimHandle,
}

/// Service port for MILANA shard servers.
pub const SERVER_PORT: u16 = 0;

fn server_node(cfg: &MilanaClusterConfig, s: u32, r: u32) -> NodeId {
    NodeId(s * cfg.replicas + r)
}

fn client_node(i: u32) -> NodeId {
    NodeId(10_000 + i)
}

/// The master/harness node.
pub const MASTER_NODE: NodeId = NodeId(20_000);

impl MilanaCluster {
    /// Boots the deployment; zero virtual time elapses.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is even or zero.
    pub fn build(handle: &SimHandle, config: MilanaClusterConfig) -> MilanaCluster {
        assert!(
            config.replicas % 2 == 1 && config.replicas >= 1,
            "replicas must be odd (2f+1)"
        );
        handle.set_latency(config.net.clone());
        let client_ids: Vec<ClientId> = (0..config.clients).map(ClientId).collect();
        let groups: Vec<ReplicaGroup> = (0..config.shards)
            .map(|s| ReplicaGroup {
                primary: Addr::new(server_node(&config, s, 0), SERVER_PORT),
                backups: (1..config.replicas)
                    .map(|r| Addr::new(server_node(&config, s, r), SERVER_PORT))
                    .collect(),
            })
            .collect();
        let map = Rc::new(RefCell::new(ShardMap::new(groups.clone())));

        let mut replicas = Vec::new();
        for (s, group) in groups.iter().enumerate() {
            let mut slots = Vec::new();
            for (r, &addr) in group.all().iter().enumerate() {
                let backend = Backend::new(config.backend, handle, config.nand.clone());
                backend.attach_tracer(&config.tuning.obs.tracer, addr.node.0 as u64);
                let table = Rc::new(RefCell::new(TxnTable::new()));
                let mut tuning = config.tuning.clone();
                if config.auto_failover {
                    tuning.master = Some(Addr::new(MASTER_NODE, 4));
                }
                let server = TxnServer::spawn(
                    handle,
                    backend,
                    table,
                    map.clone(),
                    TxnServerConfig {
                        shard: ShardId(s as u32),
                        addr,
                        backups: if r == 0 {
                            group.backups.clone()
                        } else {
                            Vec::new()
                        },
                        is_primary: r == 0,
                        clients: client_ids.clone(),
                        primary_node: (r != 0).then_some(group.primary.node),
                        cold_start: false,
                        tuning,
                    },
                );
                slots.push(ReplicaSlot { server, addr });
            }
            replicas.push(slots);
        }

        if config.preload_keys > 0 {
            let v0 = Version::new(Timestamp(1), ClientId(u32::MAX));
            let payload = value(vec![0u8; config.value_size]);
            let m = map.borrow();
            for i in 0..config.preload_keys {
                let key = Key::from(i);
                let shard = m.shard_for(&key);
                for slot in &replicas[shard.0 as usize] {
                    slot.server
                        .backend()
                        .bulk_load(key.clone(), payload.clone(), v0);
                }
            }
            for shard in &replicas {
                for slot in shard {
                    slot.server.backend().finish_load();
                }
            }
        }

        // Auto mode: spawn the master with a promoter that drives MILANA's
        // recovery RPC, and give every client a private map + master addr.
        let master_addr = Addr::new(MASTER_NODE, 4);
        let master = if config.auto_failover {
            let promote_rpc = RpcClient::new(handle, MASTER_NODE, 5);
            let tuning = config.tuning.clone();
            let shared_map = map.clone();
            let promoter: semel::master::Promoter = Rc::new(move |shard, new_primary, peers| {
                let rpc = promote_rpc.clone();
                let tuning = tuning.clone();
                let shared_map = shared_map.clone();
                Box::pin(async move {
                    let ok = matches!(
                        rpc.call::<TxnRequest, TxnResponse>(
                            new_primary,
                            TxnRequest::Promote { backups: peers },
                            tuning.repl_timeout * 80,
                        )
                        .await,
                        Ok(TxnResponse::PromoteOk)
                    );
                    if ok {
                        // Keep the servers' shared directory view in step
                        // (servers use it for cross-shard recovery queries).
                        // A false return means this view already moved on
                        // (harness-driven promotion raced us); the RPC
                        // target is primary either way.
                        let _ = shared_map.borrow_mut().promote(shard, new_primary);
                    }
                    ok
                })
            });
            Some(semel::master::Master::spawn(
                handle,
                semel::master::MasterConfig {
                    addr: master_addr,
                    // Share the cluster's obs bundle so the master's
                    // `map_fetches` / `master_failovers` counters land in
                    // the same registry the harness and benches read.
                    obs: config.tuning.obs.clone(),
                    ..semel::master::MasterConfig::default()
                },
                map.borrow().clone(),
                promoter,
            ))
        } else {
            None
        };

        let clients = (0..config.clients)
            .map(|i| {
                let client_map = if config.auto_failover {
                    Rc::new(RefCell::new(map.borrow().clone()))
                } else {
                    map.clone()
                };
                let mut client_cfg = config.client_cfg.clone();
                // One obs bundle per cluster: clients share the sinks the
                // servers trace into.
                client_cfg.obs = config.tuning.obs.clone();
                if config.auto_failover {
                    client_cfg.master = Some(master_addr);
                }
                TxnClient::builder(handle, client_node(i), ClientId(i), client_map)
                    .clock(config.clock.clone())
                    .config(client_cfg)
                    .build()
            })
            .collect();

        MilanaCluster {
            map,
            master,
            clients,
            replicas,
            master_rpc: RpcClient::new(handle, MASTER_NODE, 0),
            config,
            power_failed: RefCell::new(std::collections::BTreeSet::new()),
            handle: handle.clone(),
        }
    }

    /// The current primary server handle of `shard`. Searches every slot
    /// row, not just `replicas[shard]` — after a whole-shard move the
    /// serving group lives in a provisioned row appended at the end.
    pub fn primary(&self, shard: ShardId) -> &TxnServer {
        let addr = self.map.borrow().group(shard).primary;
        self.replicas
            .iter()
            .flatten()
            .find(|s| s.addr == addr)
            .map(|s| &s.server)
            .expect("primary address present in slots")
    }

    /// Provisions a fresh, empty replica group to act as the destination
    /// of a live migration: spawns `config.replicas` servers for `shard`
    /// on brand-new nodes (primary first), appends their slot row, and
    /// returns the group. The shard id may be one the map does not know
    /// yet (a split's new shard) — routing reaches the group only when
    /// the rebalance engine installs the cutover.
    pub fn provision_group(&mut self, shard: ShardId) -> ReplicaGroup {
        let extra = self
            .replicas
            .iter()
            .flatten()
            .filter(|s| s.addr.node.0 >= 30_000)
            .count() as u32;
        let base = 30_000 + extra;
        let addrs: Vec<Addr> = (0..self.config.replicas)
            .map(|r| Addr::new(NodeId(base + r), SERVER_PORT))
            .collect();
        let group = ReplicaGroup {
            primary: addrs[0],
            backups: addrs[1..].to_vec(),
        };
        let client_ids: Vec<ClientId> = (0..self.config.clients).map(ClientId).collect();
        let mut slots = Vec::new();
        for (r, &addr) in addrs.iter().enumerate() {
            let backend = Backend::new(self.config.backend, &self.handle, self.config.nand.clone());
            backend.attach_tracer(&self.config.tuning.obs.tracer, addr.node.0 as u64);
            let table = Rc::new(RefCell::new(TxnTable::new()));
            let mut tuning = self.config.tuning.clone();
            if self.config.auto_failover {
                tuning.master = Some(Addr::new(MASTER_NODE, 4));
            }
            let server = TxnServer::spawn(
                &self.handle,
                backend,
                table,
                self.map.clone(),
                TxnServerConfig {
                    shard,
                    addr,
                    backups: if r == 0 {
                        group.backups.clone()
                    } else {
                        Vec::new()
                    },
                    is_primary: r == 0,
                    clients: client_ids.clone(),
                    primary_node: (r != 0).then(|| addrs[0].node),
                    cold_start: false,
                    tuning,
                },
            );
            slots.push(ReplicaSlot { server, addr });
        }
        self.replicas.push(slots);
        group
    }

    /// Kills the node hosting `shard`'s current primary (its storage and
    /// transaction table survive, as persistent memory would).
    pub fn fail_primary(&self, shard: ShardId) {
        let addr = self.map.borrow().group(shard).primary;
        self.handle.kill_node(addr.node);
    }

    /// Master failover (§4.5): promotes `shard`'s first *live* backup,
    /// updates the shard map (bumping its epoch), and waits for the new
    /// primary to finish recovery (log merge, table push, lease wait).
    ///
    /// Returns a `'static` future so callers can drive it with
    /// `Sim::block_on` without borrowing the cluster.
    ///
    /// # Errors
    ///
    /// [`PromoteError`] when no live backup exists, the candidate raced out
    /// of the group, or the promotion RPC got no answer (the candidate may
    /// have crashed mid-recovery). Fault-injection harnesses record these
    /// and retry; steady-state failovers never hit them.
    pub fn promote_backup(
        &self,
        shard: ShardId,
    ) -> impl std::future::Future<Output = Result<(), PromoteError>> {
        let handle = self.handle.clone();
        let map = self.map.clone();
        let master_rpc = self.master_rpc.clone();
        async move {
            let (new_primary, rest): (Addr, Vec<Addr>) = {
                let map = map.borrow();
                let group = map.group(shard);
                let live: Vec<Addr> = group
                    .backups
                    .iter()
                    .copied()
                    .filter(|a| !handle.is_dead(a.node))
                    .collect();
                let Some(&new_primary) = live.first() else {
                    return Err(PromoteError::NoLiveBackup);
                };
                // The new primary replicates to every *other* replica — dead
                // ones included; they catch up if they come back.
                let rest = group
                    .all()
                    .into_iter()
                    .filter(|&a| a != new_primary)
                    .collect();
                (new_primary, rest)
            };
            // Route clients to the new primary immediately; it answers
            // NotReady until recovery completes and clients retry.
            if !map.borrow_mut().promote(shard, new_primary) {
                return Err(PromoteError::NotABackup);
            }
            match master_rpc
                .call::<TxnRequest, TxnResponse>(
                    new_primary,
                    TxnRequest::Promote { backups: rest },
                    Duration::from_secs(2),
                )
                .await
            {
                Ok(TxnResponse::PromoteOk) => Ok(()),
                Ok(_) | Err(_) => Err(PromoteError::Unreachable),
            }
        }
    }

    /// Restarts a previously killed replica as a backup after a **warm**
    /// failure — an OS-process crash/restart that kept the machine (and
    /// thus the page cache and persistent memory) powered. The replica
    /// reuses its storage backend *and* its transaction table: only
    /// volatile per-key metadata and in-flight tasks were lost, exactly
    /// the state §4.5's protocol rebuilds. Contrast with
    /// [`MilanaCluster::restart_replica_cold`], which models a power
    /// failure that erased DRAM.
    ///
    /// # Panics
    ///
    /// Panics if the replica's node is still alive.
    pub fn restart_replica_warm(&mut self, shard: ShardId, replica_idx: usize) {
        let slot_addr = self.replicas[shard.0 as usize][replica_idx].addr;
        assert!(
            self.handle.is_dead(slot_addr.node),
            "restart_replica_warm on a live node"
        );
        assert!(
            !self.is_power_failed(shard, replica_idx),
            "replica lost power: it has no DRAM left to warm-restart from \
             (use restart_replica_cold)"
        );
        self.handle.revive_node(slot_addr.node);
        let old = &self.replicas[shard.0 as usize][replica_idx].server;
        let backend = old.backend().clone();
        let table = old.table().clone();
        let server = self.respawn(shard, slot_addr, backend, table, false);
        self.replicas[shard.0 as usize][replica_idx] = ReplicaSlot {
            server,
            addr: slot_addr,
        };
    }

    /// Power-fails a replica: kills its node *and* tears the storage
    /// backend's volatile state (in-flight page programs become torn
    /// pages, RAM queues and mapping tables drop). Pair with
    /// [`MilanaCluster::restart_replica_cold`].
    pub fn power_fail_replica(&self, shard: ShardId, replica_idx: usize) {
        let slot = &self.replicas[shard.0 as usize][replica_idx];
        self.handle.kill_node(slot.addr.node);
        slot.server.backend().power_fail();
        self.power_failed
            .borrow_mut()
            .insert((shard.0, replica_idx));
        self.config.tuning.obs.tracer.record(
            self.handle.now().as_nanos(),
            obskit::TraceEvent::RecoveryStep {
                node: slot.addr.node.0 as u64,
                shard: shard.0 as u64,
                phase: obskit::RecoveryPhase::PowerFail,
                detail: 0,
            },
        );
    }

    /// True when the replica's last failure was a power failure and it has
    /// not yet been cold-restarted. Restart routing (the nemesis finale,
    /// recovery harnesses) uses this to pick
    /// [`MilanaCluster::restart_replica_cold`] over the warm path.
    pub fn is_power_failed(&self, shard: ShardId, replica_idx: usize) -> bool {
        self.power_failed.borrow().contains(&(shard.0, replica_idx))
    }

    /// Restarts a previously killed replica as a backup after a **cold**
    /// (power-fail) failure: DRAM is gone, so the server gets a *fresh,
    /// empty* transaction table and mounts its flash backend — a
    /// deterministic OOB scan that rebuilds the mapping table, discards
    /// torn pages, and recovers the durable write-floor record — then runs
    /// anti-entropy catch-up against the current primary before serving.
    ///
    /// # Panics
    ///
    /// Panics if the replica's node is still alive.
    pub fn restart_replica_cold(&mut self, shard: ShardId, replica_idx: usize) {
        let slot_addr = self.replicas[shard.0 as usize][replica_idx].addr;
        assert!(
            self.handle.is_dead(slot_addr.node),
            "restart_replica_cold on a live node"
        );
        self.handle.revive_node(slot_addr.node);
        self.power_failed
            .borrow_mut()
            .remove(&(shard.0, replica_idx));
        let old = &self.replicas[shard.0 as usize][replica_idx].server;
        let backend = old.backend().clone();
        let table = Rc::new(RefCell::new(TxnTable::new()));
        let server = self.respawn(shard, slot_addr, backend, table, true);
        self.replicas[shard.0 as usize][replica_idx] = ReplicaSlot {
            server,
            addr: slot_addr,
        };
    }

    fn respawn(
        &self,
        shard: ShardId,
        addr: Addr,
        backend: Backend,
        table: Rc<RefCell<TxnTable>>,
        cold_start: bool,
    ) -> TxnServer {
        let client_ids: Vec<ClientId> = (0..self.config.clients).map(ClientId).collect();
        let mut tuning = self.config.tuning.clone();
        if self.config.auto_failover {
            tuning.master = Some(Addr::new(MASTER_NODE, 4));
        }
        TxnServer::spawn(
            &self.handle,
            backend,
            table,
            self.map.clone(),
            TxnServerConfig {
                shard,
                addr,
                backups: Vec::new(),
                is_primary: false,
                clients: client_ids,
                // A restarted replica missed an unknown stretch of the
                // floor stream: its applied watermark (persisted in the
                // table on a warm restart, zero on a cold one) stays
                // frozen until a promotion's `InstallLog` or a cold
                // catch-up splice re-syncs it.
                primary_node: None,
                cold_start,
                tuning,
            },
        )
    }
}
