//! MILANA wire protocol: transactional storage requests, 2PC, replication
//! records, recovery, and lease management (§4).

use std::rc::Rc;

use flashsim::{Key, Value};
use semel::shard::ShardId;
use simkit::net::Addr;
use simkit::time::SimTime;
use timesync::{ClientId, Timestamp, Version};

/// Globally unique transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId {
    /// The coordinating client.
    pub client: ClientId,
    /// Client-local sequence number.
    pub seq: u64,
}

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}.{}", self.client.0, self.seq)
    }
}

/// Lifecycle of a transaction on a server (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Validated and holding its write-set keys; outcome unknown.
    Prepared,
    /// Decided commit.
    Committed,
    /// Decided abort.
    Aborted,
}

/// A transaction-table record: what a primary persists (replicates) about a
/// prepared transaction so any failover can finish the job (§4.1, §4.5).
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// Transaction id.
    pub txid: TxnId,
    /// The client-assigned commit timestamp (its writes' version stamp).
    pub ts_commit: Timestamp,
    /// The writes this shard must apply on commit. Shared, not owned:
    /// a record is cloned at every replication, log-install, and catch-up
    /// hop, and the payload never mutates after prepare — one refcount
    /// bump instead of a fresh vector per hop.
    pub writes: Rc<[(Key, Value)]>,
    /// Every shard participating in the transaction (for recovery/CTP).
    /// Shared for the same reason as `writes`.
    pub participants: Rc<[ShardId]>,
    /// Current status.
    pub status: TxnStatus,
}

/// Answer to a transaction status query (recovery and CTP, §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnQueryStatus {
    /// The queried shard saw a commit decision.
    Committed,
    /// The queried shard saw an abort decision.
    Aborted,
    /// Prepared locally, outcome unknown.
    Prepared,
    /// No record of the transaction.
    Unknown,
}

/// Requests understood by a MILANA shard server.
#[derive(Debug, Clone)]
pub enum TxnRequest {
    /// Transactional snapshot read at the transaction's begin timestamp;
    /// the reply carries the prepared-version flag for local validation.
    Get {
        /// The key.
        key: Key,
        /// The reading transaction's `ts_begin`.
        at: Timestamp,
        /// The reading client, so the clock-health tracker can attribute
        /// (and fence) far-future `ts_begin` values per client.
        client: ClientId,
    },
    /// Snapshot read served by **any** replica (§4.6's relaxation for
    /// read-write transactions). No prepared flag, no `ts_latestRead`
    /// tracking: the reader must validate remotely at commit.
    GetAny {
        /// The key.
        key: Key,
        /// The reading transaction's `ts_begin`.
        at: Timestamp,
    },
    /// Snapshot read addressed to a *specific* replica (readkit backup
    /// reads). A backup answers from its own version chains when its
    /// applied watermark covers `at`, piggybacking the prepared flag like
    /// a primary get; otherwise it replies [`TxnResponse::TooStale`] and
    /// the client falls back to the primary. A primary (or a backup that
    /// was promoted since the client routed) serves it as a plain `Get`.
    ReadAt {
        /// The key.
        key: Key,
        /// The reading transaction's `ts_begin`.
        at: Timestamp,
        /// The reading client, so the clock-health tracker can attribute
        /// (and fence) far-future `ts_begin` values per client.
        client: ClientId,
    },
    /// Primary → backups, appended to every replication envelope: "this
    /// stream has told you everything with a commit stamp below `ts`". A
    /// backup that has seen *every* envelope (contiguous `seq`) may raise
    /// its applied watermark to `ts`; on a gap it keeps applying data but
    /// freezes the watermark — a lost envelope may hold an outcome the
    /// floor claims to cover. `InstallLog` restarts the stream at seq 0.
    AppliedFloor {
        /// Position of this envelope in the primary's flush stream.
        seq: u64,
        /// The primary's client watermark at flush time.
        ts: Timestamp,
    },
    /// Primary → backups: an empty envelope payload whose only purpose is
    /// to carry the appended [`TxnRequest::AppliedFloor`] across idle
    /// periods (the `watermark_gossip_interval` task submits one).
    FloorSync,
    /// 2PC phase 1 (§4.2): validate and prepare.
    Prepare {
        /// Transaction id.
        txid: TxnId,
        /// Commit timestamp chosen by the client.
        ts_commit: Timestamp,
        /// `(key, version read)` pairs owned by this shard. Shared:
        /// the coordinator builds each set once and the prepare is
        /// re-enveloped (batch plane, retransmits) without deep copies.
        reads: Rc<[(Key, Version)]>,
        /// `(key, new value)` pairs owned by this shard (shared).
        writes: Rc<[(Key, Value)]>,
        /// All participant shards (passed for recovery, §4.5); one shared
        /// allocation across the whole fan-out.
        participants: Rc<[ShardId]>,
        /// The shard-map epoch the client routed with. A prepare touching
        /// mid-migration keys while carrying an epoch older than the
        /// server's shared map — i.e. routed from a view that predates the
        /// `Migrating` marker — is fenced with
        /// ([`AbortReason::StaleEpoch`]); fences for moved-away and
        /// post-`MigrationFence` keys are decided from the shared map
        /// alone (reads carry no epoch and are redirected the same way,
        /// via `Moved`). No two owners ever accept writes for the same
        /// key.
        epoch: u64,
    },
    /// 2PC phase 2: the coordinator's decision (fire-and-forget).
    Outcome {
        /// Transaction id.
        txid: TxnId,
        /// True to commit, false to abort.
        commit: bool,
    },
    /// Client watermark broadcast (§4.4): last *decided* transaction stamp.
    Watermark {
        /// Reporting client.
        client: ClientId,
        /// Its latest decided timestamp.
        ts: Timestamp,
    },
    /// Client → primary (readkit): write-floor promise. The client will
    /// never submit a prepare with `ts_commit <= ts` after this report —
    /// its clock is monotone and `ts` is capped below every still-unacked
    /// commit stamp. Unlike `Watermark`, active snapshot reads do *not*
    /// hold it back, so the min across clients tracks wall time closely
    /// and certifies backups to serve fresh snapshot reads.
    FloorReport {
        /// Reporting client.
        client: ClientId,
        /// No future prepare from `client` carries a stamp at or below.
        ts: Timestamp,
    },
    /// Primary → backup: replicate a prepare record.
    ReplPrepare(TxnRecord),
    /// Primary → backup: replicate an outcome.
    ReplOutcome {
        /// Transaction id.
        txid: TxnId,
        /// Decision.
        commit: bool,
    },
    /// Any participant → any primary: what happened to this transaction?
    QueryTxn {
        /// Transaction id.
        txid: TxnId,
    },
    /// New primary → replicas: send me your transaction log (§4.5).
    RequestLog,
    /// New primary → backups: install the merged table.
    InstallLog {
        /// Merged records.
        records: Vec<TxnRecord>,
    },
    /// Primary → backups: extend my read lease to `until` (§4.5).
    LeaseGrant {
        /// Requested lease expiry (true time).
        until: SimTime,
    },
    /// New primary → backups: what is the longest lease you ever granted?
    LeaseQuery,
    /// Master/harness → backup: take over as primary of your shard.
    Promote {
        /// The shard's remaining backups.
        backups: Vec<Addr>,
    },
    /// Rebalance engine → source/destination primary: a migration of the
    /// carried key range is underway. The source starts dual-applying
    /// committed writes on moving keys to the destination group; the
    /// destination starts accepting bulk-copy records.
    MigrationStart {
        /// Shard losing the keys.
        from: ShardId,
        /// Shard gaining the keys.
        to: ShardId,
        /// Map epoch of the migration (the epoch after the `Migrating`
        /// marker was installed).
        epoch: u64,
        /// Destination replica addresses (primary first) for dual-apply.
        dest: Vec<Addr>,
    },
    /// Bulk-copy plane: version-stamped records streamed to a destination
    /// replica. Stamps carry the order, so records may arrive in any order
    /// and be retransmitted freely (the backend rejects duplicates).
    MigrateRecords {
        /// `(key, value, version)` triples below the copy watermark.
        records: Vec<(Key, Value, Version)>,
    },
    /// Rebalance engine → source primary: stop voting SUCCESS on prepares
    /// that touch moving keys (fence them with `StaleEpoch`). Copy and
    /// dual-apply continue; this only freezes the *set* of undecided
    /// moving transactions so cutover can drain it.
    MigrationFence,
    /// Rebalance engine → source primary: how many prepared-but-undecided
    /// transactions still touch moving keys? Cutover waits for zero.
    MigrationDrain,
    /// Rebalance engine → source and destination primaries: the map has
    /// flipped. The source answers `Moved{epoch}` for moved keys (reads
    /// included) for one forwarding term; the destination — identified by
    /// `to` plus membership in its flipped map group — announces ownership
    /// of the range.
    MigrationCutover {
        /// Shard that now owns the moved keys.
        to: ShardId,
        /// Epoch after the flip.
        epoch: u64,
    },
    /// Rebalance engine → source primary: forwarding term is over; delete
    /// moved keys from local storage.
    MigrationGc,
    /// Cold-restarting replica → its shard's current primary: anti-entropy
    /// catch-up fetch. A cursored sweep of the primary's transaction table
    /// in [`TxnId`] order; `cursor` is exclusive (`None` starts at the
    /// beginning). Recovery-plane traffic: never batched into a
    /// group-commit envelope and never shed by admission control.
    CatchUpFetch {
        /// Resume after this transaction id (exclusive); `None` = start.
        cursor: Option<TxnId>,
        /// Maximum records per reply page.
        limit: u64,
    },
}

/// Replies from a MILANA shard server.
#[derive(Debug, Clone)]
pub enum TxnResponse {
    /// Read result: the youngest committed version at the read timestamp,
    /// plus whether a *prepared* version existed at or below it (§4.3).
    Value {
        /// Version stamp of the returned value.
        version: Version,
        /// Payload.
        value: Value,
        /// True if a prepared version with timestamp `<=` the read
        /// timestamp existed — poisons client-local validation.
        prepared: bool,
    },
    /// No visible version at the requested timestamp.
    NotFound,
    /// Single-version backend lost the snapshot to the carried version.
    SnapshotUnavailable(Version),
    /// Prepare vote.
    Vote {
        /// True = SUCCESS, false = ABORT.
        ok: bool,
    },
    /// Outcome/watermark/record acknowledged.
    Ack,
    /// Status answer for [`TxnRequest::QueryTxn`].
    Status(TxnQueryStatus),
    /// This replica's transaction log.
    Log {
        /// Records, unordered.
        records: Vec<TxnRecord>,
    },
    /// Lease granted until the carried instant.
    LeaseGranted {
        /// Expiry granted.
        until: SimTime,
    },
    /// The longest lease this backup ever granted.
    LeaseInfo {
        /// Maximum granted expiry (ZERO if none).
        max_granted: SimTime,
    },
    /// Promotion finished; the server now acts as primary.
    PromoteOk,
    /// Server cannot serve yet (mid-recovery or lease not yet valid).
    NotReady,
    /// The key is no longer served here: a rebalance cut it over to
    /// another shard at the carried map epoch. The client refetches the
    /// map and re-routes.
    Moved {
        /// Map epoch at which the key left this shard.
        epoch: u64,
    },
    /// Answer to [`TxnRequest::MigrationDrain`]: how many prepared
    /// transactions touching moving keys are still undecided.
    Drained {
        /// Undecided moving-key transactions still in the table.
        pending: u64,
    },
    /// Definite no-vote on a prepare fenced by a rebalance: the client's
    /// map epoch is behind the server's. Nothing was validated or
    /// installed; the client refetches the map and retries.
    StaleEpoch {
        /// The server's current map epoch.
        epoch: u64,
    },
    /// A backup declined a [`TxnRequest::ReadAt`] because its applied
    /// watermark does not cover the snapshot. The client records the
    /// watermark in its routing view and retries on the primary.
    TooStale {
        /// The replica's current applied watermark.
        watermark: Timestamp,
    },
    /// A backup-served [`TxnRequest::ReadAt`] answer: the inner read reply
    /// (`Value`/`NotFound`/`SnapshotUnavailable`) plus routing metadata the
    /// client feeds to its readkit [`readkit::ReplicaView`].
    FromReplica {
        /// The read result proper.
        reply: Box<TxnResponse>,
        /// The serving replica's applied watermark.
        watermark: Timestamp,
        /// The serving replica's admission queue depth (for
        /// power-of-two-choices routing).
        depth: u64,
    },
    /// One page of a [`TxnRequest::CatchUpFetch`] sweep.
    CatchUpRecords {
        /// Table records in [`TxnId`] order, after the cursor.
        records: Vec<TxnRecord>,
        /// Cursor for the next page; `None` when the sweep is complete.
        next: Option<TxnId>,
        /// The primary's floor-stream position (the `seq` its *next*
        /// `AppliedFloor` will carry) at reply time. On the final page the
        /// replica splices into the live stream here: lower seqs still in
        /// flight are duplicates of state the sweep already covered.
        floor_seq: u64,
        /// The primary's current client write-floor at reply time
        /// ([`timesync::Timestamp::ZERO`] when no client has promised yet).
        floor: Timestamp,
    },
    /// Definite no-vote on a prepare whose `ts_commit` the server's
    /// clock-health tracker judged inconsistent with its own clock (inside
    /// the uncertainty window or too far in the future), or whose client is
    /// fenced as a persistent clock outlier. Nothing was validated or
    /// installed.
    ClockSuspect,
    /// Storage out of space.
    Capacity,
    /// The server refused the request instead of doing the work (admission
    /// queue full or request deadline already expired). For a `Prepare`
    /// this is a definite no-vote: nothing was validated or installed, so
    /// the coordinator may abort safely.
    Shed(loadkit::Shed),
}

/// Client-visible transaction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The transaction aborted; retry with fresh reads.
    Aborted(AbortReason),
    /// A key had no visible version (application-level condition, not a
    /// concurrency conflict).
    KeyNotFound(Key),
    /// The shard primary could not be reached.
    Timeout,
    /// Operation on a transaction that already committed or aborted.
    Finished,
}

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A server vote rejected validation (Algorithm 1 conflict).
    Validation,
    /// Local validation saw a prepared version in the read set (§4.3).
    PreparedRead,
    /// A single-version backend lost the snapshot this transaction needed.
    SnapshotUnavailable,
    /// A participant could not be reached during 2PC; the coordinator
    /// resolved the uncertainty by aborting.
    ParticipantUnreachable,
    /// The application called [`crate::client::Txn::abort`].
    UserRequested,
    /// A participant shed the prepare under overload (or the client's retry
    /// budget / circuit breaker refused to keep trying). A shed prepare is
    /// a definite no-vote, so this abort is safe — no outcome uncertainty.
    Overloaded,
    /// The prepare routed with a shard map older than the server's: a
    /// rebalance moved (or is moving) one of the touched keys. A fenced
    /// prepare is a definite no-vote; the client refetches the map and
    /// retries under the new epoch.
    StaleEpoch,
    /// A server's clock-health tracker refused the prepare: `ts_commit`
    /// was inconsistent with the server's clock beyond the uncertainty
    /// bound ε, or the client is fenced as a persistent outlier. A
    /// definite no-vote; retrying helps only after the clock recovers.
    ClockSuspect,
}

impl AbortReason {
    /// The system-neutral observability class for this reason (the shared
    /// taxonomy exported by every system's stats).
    pub fn class(self) -> obskit::AbortClass {
        match self {
            AbortReason::Validation => obskit::AbortClass::Validation,
            AbortReason::PreparedRead => obskit::AbortClass::PreparedRead,
            AbortReason::SnapshotUnavailable => obskit::AbortClass::SnapshotUnavailable,
            AbortReason::ParticipantUnreachable => obskit::AbortClass::ParticipantUnreachable,
            AbortReason::UserRequested => obskit::AbortClass::UserRequested,
            AbortReason::Overloaded => obskit::AbortClass::Shed,
            AbortReason::StaleEpoch => obskit::AbortClass::StaleEpoch,
            AbortReason::ClockSuspect => obskit::AbortClass::ClockSuspect,
        }
    }
}

/// Why a failover promotion could not complete. Under fault injection a
/// promotion races crashes and partitions, so these are expected outcomes a
/// nemesis records and retries — not panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromoteError {
    /// Every backup of the shard is dead; nothing can be promoted.
    NoLiveBackup,
    /// The chosen backup never answered the `Promote` RPC (it may have
    /// crashed mid-recovery or been partitioned from the master).
    Unreachable,
    /// The chosen address is not a current backup in the shard map (it
    /// raced a concurrent promotion).
    NotABackup,
}

impl PromoteError {
    /// The observability class a failed promotion maps onto: the
    /// coordinator-side effect is an unreachable participant.
    pub fn class(self) -> obskit::AbortClass {
        obskit::AbortClass::ParticipantUnreachable
    }
}

impl std::fmt::Display for PromoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PromoteError::NoLiveBackup => write!(f, "no live backup to promote"),
            PromoteError::Unreachable => write!(f, "promotion RPC got no answer"),
            PromoteError::NotABackup => write!(f, "address is not a current backup"),
        }
    }
}

impl std::error::Error for PromoteError {}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render through the shared observability taxonomy so logs, traces,
        // and error strings all agree on the abort vocabulary.
        f.write_str(self.class().as_str())
    }
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Aborted(r) => write!(f, "transaction aborted ({r})"),
            TxnError::KeyNotFound(k) => write!(f, "key {k} not found"),
            TxnError::Timeout => write!(f, "shard primary unreachable"),
            TxnError::Finished => write!(f, "transaction already finished"),
        }
    }
}

impl std::error::Error for TxnError {}
