//! End-to-end protocol tests for MILANA on a simulated cluster.

use std::time::Duration;

use flashsim::{value, BackendKind, Key, NandConfig};
use semel::shard::ShardId;
use simkit::Sim;
use timesync::ClockSpec;

use crate::client::{TxnOpts, ValidationMode};
use crate::cluster::{MilanaCluster, MilanaClusterConfig};
use crate::msg::{AbortReason, TxnError};

fn nand() -> NandConfig {
    NandConfig {
        blocks: 128,
        pages_per_block: 8,
        ..NandConfig::default()
    }
}

fn base_cfg() -> MilanaClusterConfig {
    MilanaClusterConfig {
        shards: 2,
        replicas: 3,
        clients: 3,
        nand: nand(),
        preload_keys: 200,
        clock: ClockSpec::perfect(),
        ..MilanaClusterConfig::default()
    }
}

fn k(i: u64) -> Key {
    Key::from(i)
}

#[test]
fn read_write_transaction_commits() {
    let mut sim = Sim::new(21);
    let h = sim.handle();
    let cluster = MilanaCluster::build(&h, base_cfg());
    sim.block_on(async move {
        let c = &cluster.clients[0];
        let mut t = c.begin_with(TxnOpts::default());
        let _ = t.get(&k(1)).await.unwrap();
        t.put(k(1), value(&b"new"[..]));
        let info = t.commit().await.unwrap();
        assert!(info.ts_commit.is_some());
        assert!(!info.local);
        // A later transaction sees the write.
        let mut t2 = c.begin_with(TxnOpts::default());
        assert_eq!(&t2.get(&k(1)).await.unwrap()[..], b"new");
        t2.commit().await.unwrap();
    });
}

#[test]
fn read_only_transaction_validates_locally_with_zero_messages() {
    let mut sim = Sim::new(22);
    let h = sim.handle();
    let hh = h.clone();
    let cluster = MilanaCluster::build(&h, base_cfg());
    sim.block_on(async move {
        let c = &cluster.clients[0];
        let mut t = c.begin_with(TxnOpts::default());
        let _ = t.get(&k(1)).await.unwrap();
        let _ = t.get(&k(2)).await.unwrap();
        let sent_before = hh.net_stats().sent;
        let info = t.commit().await.unwrap();
        let sent_after = hh.net_stats().sent;
        assert!(info.local);
        assert_eq!(info.ts_commit, None);
        assert_eq!(sent_before, sent_after, "local commit sent messages");
        assert_eq!(c.stats().local_validations, 1);
    });
}

#[test]
fn own_writes_read_back_within_transaction() {
    let mut sim = Sim::new(23);
    let h = sim.handle();
    let cluster = MilanaCluster::build(&h, base_cfg());
    sim.block_on(async move {
        let c = &cluster.clients[0];
        let mut t = c.begin_with(TxnOpts::default());
        t.put(k(5), value(&b"mine"[..]));
        assert_eq!(&t.get(&k(5)).await.unwrap()[..], b"mine");
        t.commit().await.unwrap();
    });
}

#[test]
fn conflicting_writers_one_aborts() {
    let mut sim = Sim::new(24);
    let h = sim.handle();
    let hh = h.clone();
    let cluster = MilanaCluster::build(&h, base_cfg());
    sim.block_on(async move {
        let c0 = cluster.clients[0].clone();
        let c1 = cluster.clients[1].clone();
        // Both read key 1 then write it: classic write-write/read conflict.
        let run = |c: crate::client::TxnClient, tag: &'static [u8]| async move {
            let mut t = c.begin_with(TxnOpts::default());
            let _ = t.get(&k(1)).await.unwrap();
            t.put(k(1), value(tag));
            t.commit().await
        };
        let j0 = hh.spawn(run(c0, b"zero"));
        let j1 = hh.spawn(run(c1, b"one"));
        let r0 = j0.await;
        let r1 = j1.await;
        let commits = [&r0, &r1].iter().filter(|r| r.is_ok()).count();
        assert_eq!(commits, 1, "exactly one writer must win: {r0:?} {r1:?}");
    });
}

#[test]
fn snapshot_reads_ignore_later_commits() {
    let mut sim = Sim::new(25);
    let h = sim.handle();
    let hh = h.clone();
    let cluster = MilanaCluster::build(&h, base_cfg());
    sim.block_on(async move {
        let c0 = cluster.clients[0].clone();
        let c1 = cluster.clients[1].clone();
        // t_old begins, reads one key.
        let mut t_old = c0.begin_with(TxnOpts::default());
        let before = t_old.get(&k(1)).await.unwrap();
        // Meanwhile a writer commits a new version of both keys.
        let mut w = c1.begin_with(TxnOpts::default());
        let _ = w.get(&k(1)).await.unwrap();
        w.put(k(1), value(&b"later"[..]));
        w.put(k(2), value(&b"later"[..]));
        w.commit().await.unwrap();
        hh.sleep(Duration::from_millis(5)).await;
        // t_old keeps reading its snapshot: k2 must be the OLD value,
        // consistent with what it already read from k1.
        let after = t_old.get(&k(2)).await.unwrap();
        assert_eq!(before.len(), 472, "preloaded value");
        assert_eq!(after.len(), 472, "snapshot must predate the writer");
        // And it can still commit read-only, locally.
        let info = t_old.commit().await.unwrap();
        assert!(info.local);
    });
}

#[test]
fn stale_read_write_transaction_aborts() {
    let mut sim = Sim::new(26);
    let h = sim.handle();
    let hh = h.clone();
    let cluster = MilanaCluster::build(&h, base_cfg());
    sim.block_on(async move {
        let c0 = cluster.clients[0].clone();
        let c1 = cluster.clients[1].clone();
        let mut t = c0.begin_with(TxnOpts::default());
        let _ = t.get(&k(1)).await.unwrap();
        // Another client overwrites key 1 and commits.
        let mut w = c1.begin_with(TxnOpts::default());
        let _ = w.get(&k(1)).await.unwrap();
        w.put(k(1), value(&b"sneak"[..]));
        w.commit().await.unwrap();
        hh.sleep(Duration::from_millis(5)).await;
        // Now t tries to write based on its stale read: must abort.
        t.put(k(3), value(&b"doomed"[..]));
        let err = t.commit().await.unwrap_err();
        assert_eq!(err, TxnError::Aborted(AbortReason::Validation));
    });
}

#[test]
fn multi_shard_transaction_is_atomic() {
    let mut sim = Sim::new(27);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 3;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let c = &cluster.clients[0];
        // Find two keys on different shards.
        let map = cluster.map.borrow().clone();
        let key_a = k(1);
        let shard_a = map.shard_for(&key_a);
        let key_b = (2..100u64)
            .map(k)
            .find(|key| map.shard_for(key) != shard_a)
            .expect("a key on another shard");
        let mut t = c.begin_with(TxnOpts::default());
        let _ = t.get(&key_a).await.unwrap();
        let _ = t.get(&key_b).await.unwrap();
        t.put(key_a.clone(), value(&b"both"[..]));
        t.put(key_b.clone(), value(&b"both"[..]));
        t.commit().await.unwrap();
        hh.sleep(Duration::from_millis(5)).await;
        let mut t2 = c.begin_with(TxnOpts::default());
        assert_eq!(&t2.get(&key_a).await.unwrap()[..], b"both");
        assert_eq!(&t2.get(&key_b).await.unwrap()[..], b"both");
        t2.commit().await.unwrap();
    });
}

#[test]
fn read_only_aborts_when_prepared_version_visible() {
    let mut sim = Sim::new(28);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.clients = 2;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let writer = cluster.clients[0].clone();
        let reader = cluster.clients[1].clone();
        // The writer prepares (via a slow 2PC we interleave with) — emulate
        // by starting commit and reading in parallel.
        let hh2 = hh.clone();
        let wj = hh.spawn(async move {
            let mut w = writer.begin_with(TxnOpts::default());
            let _ = w.get(&k(1)).await.unwrap();
            w.put(k(1), value(&b"w"[..]));
            // Stretch the window a little so the reader lands mid-2PC.
            hh2.sleep(Duration::from_micros(200)).await;
            w.commit().await
        });
        // Give the writer time to reach the prepared state.
        hh.sleep(Duration::from_micros(400)).await;
        let mut r = reader.begin_with(TxnOpts::default());
        match r.get(&k(1)).await {
            Ok(_) => {
                // Either we read before the prepare (commit fine) or the
                // prepared flag poisons local validation.
                let _ = r.commit().await;
            }
            Err(e) => panic!("get failed: {e}"),
        }
        wj.await.unwrap();
        // The invariant that matters: the system never both committed the
        // reader at a snapshot that should have included the writer AND
        // later let the writer commit at an earlier timestamp. The server
        // guards this with ts_latestRead; if we got here, validation held.
    });
}

#[test]
fn single_version_backend_aborts_tardy_readers() {
    let mut sim = Sim::new(29);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.backend = BackendKind::Sftl;
    cfg.clients = 2;
    cfg.shards = 1;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let reader = cluster.clients[0].clone();
        let writer = cluster.clients[1].clone();
        // Reader begins (fixing ts_begin), writer then overwrites the key.
        let mut r = reader.begin_with(TxnOpts::default());
        let mut w = writer.begin_with(TxnOpts::default());
        let _ = w.get(&k(1)).await.unwrap();
        w.put(k(1), value(&b"clobber"[..]));
        w.commit().await.unwrap();
        hh.sleep(Duration::from_millis(5)).await;
        // Reader's snapshot is gone on a single-version FTL.
        let err = r.get(&k(1)).await.unwrap_err();
        assert_eq!(err, TxnError::Aborted(AbortReason::SnapshotUnavailable));
        let err = r.commit().await.unwrap_err();
        assert_eq!(err, TxnError::Aborted(AbortReason::SnapshotUnavailable));
    });
}

#[test]
fn primary_failover_preserves_committed_data() {
    let mut sim = Sim::new(30);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 1;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let c = cluster.clients[0].clone();
        let mut t = c.begin_with(TxnOpts::default());
        let _ = t.get(&k(1)).await.unwrap();
        t.put(k(1), value(&b"survives"[..]));
        t.commit().await.unwrap();
        hh.sleep(Duration::from_millis(10)).await; // let backups apply
        cluster.fail_primary(ShardId(0));
        cluster.promote_backup(ShardId(0)).await.expect("promotion");
        // New primary serves the committed value.
        let mut t2 = c.begin_with(TxnOpts::default());
        assert_eq!(&t2.get(&k(1)).await.unwrap()[..], b"survives");
        t2.commit().await.unwrap();
        // And accepts new writes.
        let mut t3 = c.begin_with(TxnOpts::default());
        let _ = t3.get(&k(2)).await.unwrap();
        t3.put(k(2), value(&b"post-failover"[..]));
        t3.commit().await.unwrap();
    });
}

#[test]
fn failover_commits_prepared_single_shard_transaction() {
    let mut sim = Sim::new(31);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 1;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        // A coordinator prepares a single-shard transaction and then
        // vanishes without ever sending the outcome.
        let primary_addr = cluster.map.borrow().group(ShardId(0)).primary;
        let txid = crate::msg::TxnId {
            client: timesync::ClientId(0),
            seq: 999,
        };
        let vote = cluster
            .master_rpc
            .call::<crate::msg::TxnRequest, crate::msg::TxnResponse>(
                primary_addr,
                crate::msg::TxnRequest::Prepare {
                    txid,
                    ts_commit: timesync::Timestamp(1_000_000),
                    reads: Vec::new().into(),
                    writes: vec![(k(1), value(&b"limbo"[..]))].into(),
                    participants: vec![ShardId(0)].into(),
                    epoch: 0,
                },
                Duration::from_millis(50),
            )
            .await
            .unwrap();
        assert!(matches!(vote, crate::msg::TxnResponse::Vote { ok: true }));
        hh.sleep(Duration::from_millis(2)).await; // replication settles
        cluster.fail_primary(ShardId(0));
        cluster.promote_backup(ShardId(0)).await.expect("promotion");
        // Algorithm 2: a prepared single-shard transaction is committed by
        // the new primary (the coordinator could only have decided commit).
        let c = cluster.clients[0].clone();
        let mut t = c.begin_with(TxnOpts::default());
        let got = t.get(&k(1)).await.unwrap();
        t.commit().await.unwrap();
        assert_eq!(&got[..], b"limbo");
        // And the shard accepts new writes afterwards.
        let mut t2 = c.begin_with(TxnOpts::default());
        let _ = t2.get(&k(2)).await.unwrap();
        t2.put(k(2), value(&b"post-failover"[..]));
        t2.commit().await.unwrap();
    });
}

#[test]
fn ctp_resolves_transaction_after_client_crash() {
    let mut sim = Sim::new(32);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 2;
    cfg.tuning.ctp_after = Duration::from_millis(20);
    cfg.tuning.ctp_scan_every = Duration::from_millis(10);
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        // A cross-shard transaction prepares at BOTH shards; the coordinator
        // then dies without sending outcomes.
        let map = cluster.map.borrow().clone();
        let key_a = k(1);
        let shard_a = map.shard_for(&key_a);
        let key_b = (2..100u64)
            .map(k)
            .find(|key| map.shard_for(key) != shard_a)
            .unwrap();
        let shard_b = map.shard_for(&key_b);
        let txid = crate::msg::TxnId {
            client: timesync::ClientId(0),
            seq: 777,
        };
        let participants = {
            let mut p = vec![shard_a, shard_b];
            p.sort();
            p
        };
        for (shard, key) in [(shard_a, key_a.clone()), (shard_b, key_b.clone())] {
            let vote = cluster
                .master_rpc
                .call::<crate::msg::TxnRequest, crate::msg::TxnResponse>(
                    map.group(shard).primary,
                    crate::msg::TxnRequest::Prepare {
                        txid,
                        ts_commit: timesync::Timestamp(1_000_000),
                        reads: Vec::new().into(),
                        writes: vec![(key, value(&b"ctp"[..]))].into(),
                        participants: participants.clone().into(),
                        epoch: 0,
                    },
                    Duration::from_millis(50),
                )
                .await
                .unwrap();
            assert!(matches!(vote, crate::msg::TxnResponse::Vote { ok: true }));
        }
        // While prepared, the keys are blocked: a conflicting writer aborts.
        let other = cluster.clients[1].clone();
        let mut blocked = other.begin_with(TxnOpts::default());
        let _ = blocked.get(&key_a).await; // may see prepared flag
        blocked.put(key_a.clone(), value(&b"blocked"[..]));
        let err = blocked.commit().await.unwrap_err();
        assert_eq!(err, TxnError::Aborted(AbortReason::Validation));
        // CTP: the designated coordinator sees all participants prepared and
        // commits the transaction on both shards.
        hh.sleep(Duration::from_millis(200)).await;
        let mut t = other.begin_with(TxnOpts::default());
        let va = t.get(&key_a).await.unwrap();
        let vb = t.get(&key_b).await.unwrap();
        t.commit().await.unwrap();
        assert_eq!(&va[..], b"ctp");
        assert_eq!(&vb[..], b"ctp");
        // No shard still holds the transaction prepared.
        for shard in &cluster.replicas {
            for slot in shard {
                let stuck = slot
                    .server
                    .table()
                    .borrow()
                    .stuck_prepared(timesync::Timestamp::MAX);
                assert!(stuck.is_empty(), "prepared txn left behind");
            }
        }
        // And the keys accept new writes again.
        let mut t2 = other.begin_with(TxnOpts::default());
        let _ = t2.get(&key_a).await.unwrap();
        t2.put(key_a.clone(), value(&b"after"[..]));
        t2.commit().await.unwrap();
    });
}

#[test]
fn without_local_validation_read_only_goes_remote() {
    let mut sim = Sim::new(33);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.client_cfg.validation = ValidationMode::Remote;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let c = &cluster.clients[0];
        let mut t = c.begin_with(TxnOpts::default());
        let _ = t.get(&k(1)).await.unwrap();
        let sent_before = hh.net_stats().sent;
        let info = t.commit().await.unwrap();
        assert!(!info.local);
        assert!(hh.net_stats().sent > sent_before, "expected 2PC messages");
        assert_eq!(c.stats().local_validations, 0);
    });
}

#[test]
fn watermark_advances_and_prunes_under_transactions() {
    let mut sim = Sim::new(34);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 1;
    cfg.clients = 1;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let c = cluster.clients[0].clone();
        for i in 0..8u64 {
            let mut t = c.begin_with(TxnOpts::default());
            let _ = t.get(&k(1)).await.unwrap();
            t.put(k(1), value(vec![i as u8; 16]));
            t.commit().await.unwrap();
            hh.sleep(Duration::from_millis(30)).await;
        }
        hh.sleep(Duration::from_millis(300)).await;
        // One more write triggers pruning below the advanced watermark.
        let mut t = c.begin_with(TxnOpts::default());
        let _ = t.get(&k(1)).await.unwrap();
        t.put(k(1), value(&b"last"[..]));
        t.commit().await.unwrap();
        hh.sleep(Duration::from_millis(5)).await;
        let versions = cluster.primary(ShardId(0)).backend().versions(&k(1));
        assert!(
            versions.len() < 6,
            "version chain unpruned: {} entries",
            versions.len()
        );
    });
}

#[test]
fn skewed_clocks_still_serializable() {
    // With heavy NTP skew, aborts rise but committed results stay correct.
    let mut sim = Sim::new(35);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.clock = ClockSpec::ntp();
    cfg.clients = 3;
    cfg.shards = 1;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        // Counter increment workload: each commit adds exactly 1.
        let mut commits = 0u64;
        for round in 0..30 {
            let c = cluster.clients[round % 3].clone();
            let mut t = c.begin_with(TxnOpts::default());
            let cur = t.get(&k(1)).await;
            let n = match cur {
                Ok(v) if v.len() == 8 => u64::from_be_bytes(v[..8].try_into().unwrap()),
                _ => 0,
            };
            t.put(k(1), value(Vec::from((n + 1).to_be_bytes())));
            if t.commit().await.is_ok() {
                commits += 1;
            }
            hh.sleep(Duration::from_millis(2)).await;
        }
        hh.sleep(Duration::from_millis(10)).await;
        let c = cluster.clients[0].clone();
        let mut t = c.begin_with(TxnOpts::default());
        let v = t.get(&k(1)).await.unwrap();
        t.commit().await.unwrap();
        let n = u64::from_be_bytes(v[..8].try_into().unwrap());
        assert_eq!(n, commits, "lost or duplicated increments");
        assert!(commits > 0);
    });
}

#[test]
fn long_running_reader_survives_watermark_churn() {
    // §4.4: an active long-running read-only transaction holds the client's
    // watermark report below its ts_begin, so the GC never discards the
    // versions its snapshot needs — no matter how much the key churns.
    let mut sim = Sim::new(36);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 1;
    cfg.clients = 2;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let reader = cluster.clients[0].clone();
        let writer = cluster.clients[1].clone();
        // The long-running transaction reads one key, fixing its snapshot.
        let mut long_txn = reader.begin_with(TxnOpts::default());
        let first = long_txn.get(&k(1)).await.unwrap();
        // While it dawdles, the writer overwrites keys 1 and 2 many times,
        // with plenty of watermark broadcasts in between.
        for round in 0..10u64 {
            for key in [1u64, 2] {
                loop {
                    let mut w = writer.begin_with(TxnOpts::default());
                    let _ = w.get(&k(key)).await.unwrap();
                    w.put(k(key), value(vec![round as u8; 16]));
                    match w.commit().await {
                        Ok(_) => break,
                        Err(TxnError::Aborted(_)) => continue,
                        Err(e) => panic!("{e}"),
                    }
                }
            }
            hh.sleep(Duration::from_millis(120)).await; // watermark rounds
        }
        // The reader's report stayed below its begin timestamp...
        assert!(reader.watermark_report() < long_txn.ts_begin());
        // ...so its snapshot of key 2 is still consistent with key 1.
        let second = long_txn.get(&k(2)).await.unwrap();
        assert_eq!(first.len(), 472, "snapshot value must be the preload");
        assert_eq!(second.len(), 472, "snapshot value must be the preload");
        let info = long_txn.commit().await.unwrap();
        assert!(info.local);
        // Once the reader finishes, the watermark report advances to its
        // decided timestamp (no active transactions hold it down).
        assert!(reader.watermark_report() >= timesync::Timestamp(1));
    });
}

#[test]
fn cached_transactions_skip_the_server_on_warm_keys() {
    // §4.3 future work: a transaction marked read-write in advance may read
    // from the client cache, but must then validate remotely.
    let mut sim = Sim::new(37);
    let h = sim.handle();
    let hh = h.clone();
    let cluster = MilanaCluster::build(&h, base_cfg());
    sim.block_on(async move {
        let c = &cluster.clients[0];
        // Warm the cache with a normal transaction.
        let mut warm = c.begin_with(TxnOpts::default());
        let _ = warm.get(&k(1)).await.unwrap();
        let _ = warm.get(&k(2)).await.unwrap();
        warm.commit().await.unwrap();
        // A cached transaction now reads both keys without any messages.
        let sent_before = hh.net_stats().sent;
        let mut t = c.begin_with(TxnOpts::cached());
        let _ = t.get(&k(1)).await.unwrap();
        let _ = t.get(&k(2)).await.unwrap();
        assert_eq!(t.cache_hits(), 2);
        assert_eq!(hh.net_stats().sent, sent_before, "cached reads sent RPCs");
        // ...but the commit validates remotely even though it is read-only.
        let info = t.commit().await.unwrap();
        assert!(!info.local, "cached transactions must validate remotely");
        assert!(hh.net_stats().sent > sent_before);
    });
}

#[test]
fn stale_cache_aborts_then_recovers() {
    let mut sim = Sim::new(38);
    let h = sim.handle();
    let hh = h.clone();
    let cluster = MilanaCluster::build(&h, base_cfg());
    sim.block_on(async move {
        let reader = cluster.clients[0].clone();
        let writer = cluster.clients[1].clone();
        // Reader caches key 1.
        let mut warm = reader.begin_with(TxnOpts::default());
        let _ = warm.get(&k(1)).await.unwrap();
        warm.commit().await.unwrap();
        // Writer overwrites key 1 behind the reader's back.
        let mut w = writer.begin_with(TxnOpts::default());
        let _ = w.get(&k(1)).await.unwrap();
        w.put(k(1), value(&b"fresh"[..]));
        w.commit().await.unwrap();
        hh.sleep(Duration::from_millis(5)).await;
        // The reader's cached transaction reads the stale version and must
        // fail remote validation...
        let mut t = reader.begin_with(TxnOpts::cached());
        let _ = t.get(&k(1)).await.unwrap();
        assert_eq!(t.cache_hits(), 1);
        t.put(k(2), value(&b"dep"[..]));
        let err = t.commit().await.unwrap_err();
        assert_eq!(err, TxnError::Aborted(AbortReason::Validation));
        // ...which invalidates the stale entry, so the retry refetches and
        // succeeds.
        let mut t2 = reader.begin_with(TxnOpts::cached());
        let v1 = t2.get(&k(1)).await.unwrap();
        assert_eq!(t2.cache_hits(), 0, "stale entry must have been dropped");
        assert_eq!(&v1[..], b"fresh");
        t2.put(k(2), value(&b"dep"[..]));
        t2.commit().await.unwrap();
    });
}

#[test]
fn own_commits_refresh_the_client_cache() {
    let mut sim = Sim::new(39);
    let h = sim.handle();
    let cluster = MilanaCluster::build(&h, base_cfg());
    sim.block_on(async move {
        let c = &cluster.clients[0];
        let mut t = c.begin_with(TxnOpts::default());
        let _ = t.get(&k(5)).await.unwrap();
        t.put(k(5), value(&b"mine"[..]));
        t.commit().await.unwrap();
        // The cached read now returns our own committed write, serverlessly.
        let mut t2 = c.begin_with(TxnOpts::cached());
        let v = t2.get(&k(5)).await.unwrap();
        assert_eq!(&v[..], b"mine");
        assert_eq!(t2.cache_hits(), 1);
        t2.commit().await.unwrap();
    });
}

#[test]
fn automatic_failover_without_harness_intervention() {
    // Auto mode: the master detects the dead primary via missed heartbeats,
    // promotes a backup (driving the full §4.5 recovery), and clients find
    // the new primary by refreshing their maps — no test-harness surgery.
    let mut sim = Sim::new(40);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 1;
    cfg.clients = 2;
    cfg.auto_failover = true;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let c = cluster.clients[0].clone();
        // Commit something against the original primary.
        let mut t = c.begin_with(TxnOpts::default());
        let _ = t.get(&k(1)).await.unwrap();
        t.put(k(1), value(&b"pre-crash"[..]));
        t.commit().await.unwrap();
        hh.sleep(Duration::from_millis(10)).await;
        // Kill the primary. Nobody calls promote_backup.
        cluster.fail_primary(ShardId(0));
        // Within a heartbeat timeout + recovery (lease wait ~100ms), the
        // master must have failed over on its own.
        hh.sleep(Duration::from_millis(600)).await;
        let master = cluster.master.as_ref().expect("auto mode has a master");
        assert_eq!(master.stats().failovers, 1, "master drove the failover");
        assert!(master.map().epoch() >= 1);
        // Clients recover purely through map refresh + retries.
        let mut t2 = c.begin_with(TxnOpts::default());
        let got = t2.get(&k(1)).await.unwrap();
        assert_eq!(&got[..], b"pre-crash");
        t2.commit().await.unwrap();
        let mut t3 = c.begin_with(TxnOpts::default());
        let _ = t3.get(&k(2)).await.unwrap();
        t3.put(k(2), value(&b"post-crash"[..]));
        t3.commit().await.unwrap();
    });
}

#[test]
fn history_window_retains_old_versions_for_analytics() {
    // §3.1: with a GC history window configured, versions younger than the
    // window survive even after every client's watermark has passed them.
    let mut sim = Sim::new(41);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 1;
    cfg.clients = 1;
    cfg.tuning.history_window = Some(Duration::from_secs(5));
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let c = cluster.clients[0].clone();
        for i in 0..6u64 {
            let mut t = c.begin_with(TxnOpts::default());
            let _ = t.get(&k(1)).await.unwrap();
            t.put(k(1), value(vec![i as u8; 16]));
            t.commit().await.unwrap();
            hh.sleep(Duration::from_millis(120)).await; // watermark rounds
        }
        // Force one more write so lazy pruning would run if allowed.
        let mut t = c.begin_with(TxnOpts::default());
        let _ = t.get(&k(1)).await.unwrap();
        t.put(k(1), value(&b"last"[..]));
        t.commit().await.unwrap();
        hh.sleep(Duration::from_millis(10)).await;
        // All seven writes (plus the preload) are younger than 5s: the
        // whole chain must still be there.
        let versions = cluster.primary(ShardId(0)).backend().versions(&k(1));
        assert!(
            versions.len() >= 8,
            "history pruned inside the window: {} versions",
            versions.len()
        );
    });
}

#[test]
fn replica_reads_spread_load_and_validate_remotely() {
    // §4.6: read-write transactions may read from any replica, then
    // validate at the primary before commit.
    let mut sim = Sim::new(42);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 1;
    cfg.clients = 1;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let c = cluster.clients[0].clone();
        // Many replica-read transactions: gets spread across all 3 replicas.
        for i in 0..12u64 {
            let mut t = c.begin_with(TxnOpts::default());
            let _ = t.get_any(&k(i % 4)).await.unwrap();
            t.put(k(i % 4), value(vec![i as u8; 8]));
            loop {
                match t.commit().await {
                    Ok(info) => {
                        assert!(!info.local, "replica reads force remote validation");
                        break;
                    }
                    Err(TxnError::Aborted(_)) => {
                        t = c.begin_with(TxnOpts::default());
                        let _ = t.get_any(&k(i % 4)).await.unwrap();
                        t.put(k(i % 4), value(vec![i as u8; 8]));
                    }
                    Err(e) => panic!("{e}"),
                }
            }
            hh.sleep(Duration::from_millis(3)).await;
        }
        // The backups actually served some of those reads.
        let backup_gets: u64 = cluster.replicas[0][1..]
            .iter()
            .map(|s| s.server.backend().stats().gets)
            .sum();
        assert!(backup_gets > 0, "no reads reached the backups");
        // And even a read-ONLY transaction using get_any validates remotely.
        let mut ro = c.begin_with(TxnOpts::default());
        let _ = ro.get_any(&k(1)).await.unwrap();
        let info = ro.commit().await.unwrap();
        assert!(!info.local);
    });
}

#[test]
fn partitioned_old_primary_stops_serving_after_lease_expiry() {
    // The §4.5 lease safety property: a deposed-but-alive primary that can
    // no longer renew its lease from the backups must refuse reads, or a
    // failover could serve writes that contradict reads the old primary
    // already served.
    let mut sim = Sim::new(43);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 1;
    cfg.clients = 1;
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let c = cluster.clients[0].clone();
        // Warm up: normal reads succeed against the original primary.
        let mut t = c.begin_with(TxnOpts::default());
        let _ = t.get(&k(1)).await.unwrap();
        t.commit().await.unwrap();
        // Partition the primary from its backups (it stays reachable from
        // the client!). Its lease can no longer be renewed.
        let primary = cluster.map.borrow().group(ShardId(0)).primary;
        let backups: Vec<_> = cluster.map.borrow().group(ShardId(0)).backups.clone();
        let backup_nodes: Vec<_> = backups.iter().map(|a| a.node).collect();
        hh.partition(&[primary.node], &backup_nodes);
        // Wait out the lease (100ms default + margin).
        hh.sleep(Duration::from_millis(250)).await;
        // The client still routes to the old primary (map unchanged), but
        // the primary must answer NotReady — surfacing as a read timeout.
        let mut t2 = c.begin_with(TxnOpts::default());
        let err = t2.get(&k(1)).await.unwrap_err();
        assert_eq!(err, TxnError::Timeout, "stale primary served a read!");
    });
}

#[test]
fn install_log_catches_up_a_stale_backup() {
    // After failover, the merged transaction table (and its committed
    // writes) are pushed to backups — including one that was dead during
    // the commits and restarted later.
    let mut sim = Sim::new(44);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 1;
    cfg.clients = 1;
    let mut cluster = MilanaCluster::build(&h, cfg);
    sim.block_on({
        let c = cluster.clients[0].clone();
        let hh2 = hh.clone();
        async move {
            // Commit once so everyone has data, then nothing more.
            let mut t = c.begin_with(TxnOpts::default());
            let _ = t.get(&k(1)).await.unwrap();
            t.put(k(1), value(&b"epoch-0"[..]));
            t.commit().await.unwrap();
            hh2.sleep(Duration::from_millis(10)).await;
        }
    });
    // Kill backup #2 — it will miss the next commits entirely.
    let lagging = cluster.replicas[0][2].addr;
    h.kill_node(lagging.node);
    sim.block_on({
        let c = cluster.clients[0].clone();
        let hh2 = hh.clone();
        async move {
            for i in 0..5u64 {
                loop {
                    let mut t = c.begin_with(TxnOpts::default());
                    let _ = t.get(&k(1)).await.unwrap();
                    t.put(k(1), value(format!("missed-{i}").into_bytes()));
                    match t.commit().await {
                        Ok(_) => break,
                        Err(TxnError::Aborted(_)) => {
                            hh2.sleep(Duration::from_millis(2)).await;
                        }
                        Err(e) => panic!("{e}"),
                    }
                }
            }
            hh2.sleep(Duration::from_millis(10)).await;
        }
    });
    // Restart the lagging backup, then fail the primary over: the new
    // primary's InstallLog must bring the stale backup's data forward.
    cluster.restart_replica_warm(ShardId(0), 2);
    cluster.fail_primary(ShardId(0));
    sim.block_on(cluster.promote_backup(ShardId(0)))
        .expect("promotion");
    sim.block_on({
        let hh2 = hh.clone();
        async move { hh2.sleep(Duration::from_millis(20)).await }
    });
    let restarted = &cluster.replicas[0][2].server;
    let latest = restarted.backend().versions(&k(1));
    // The stale backup now holds the final committed version.
    let new_primary_latest = cluster.primary(ShardId(0)).backend().versions(&k(1));
    assert_eq!(
        latest.first(),
        new_primary_latest.first(),
        "stale backup not caught up: {latest:?} vs {new_primary_latest:?}"
    );
}

#[test]
fn backup_reads_serve_covered_snapshots() {
    // readkit end-to-end: with a read route configured, snapshot reads
    // whose `ts_begin` falls under a backup's applied watermark are served
    // by that backup — correctly — and show up in the client stats.
    let mut sim = Sim::new(61);
    let h = sim.handle();
    let hh = h.clone();
    let mut cfg = base_cfg();
    cfg.shards = 1;
    cfg.clients = 2;
    cfg.client_cfg.read_route = readkit::ReadRoute::Freshest;
    cfg.client_cfg.watermark_interval = Duration::from_millis(2);
    cfg.tuning.gossip_every = Some(Duration::from_millis(2));
    let cluster = MilanaCluster::build(&h, cfg);
    sim.block_on(async move {
        let c = cluster.clients[0].clone();
        // Commit known values so reads have something to check.
        for i in 0..4u64 {
            let mut t = c.begin_with(TxnOpts::default());
            let _ = t.get(&k(i)).await.unwrap();
            t.put(k(i), value(vec![i as u8; 8]));
            t.commit().await.unwrap();
        }
        // Long-lived snapshots: while a transaction sleeps, the idle-tick
        // floor reports push every replica's applied watermark past its
        // `ts_begin`, so the later reads inside it route to backups.
        for _ in 0..8 {
            let mut t = c.begin_with(TxnOpts::default());
            hh.sleep(Duration::from_millis(12)).await;
            for i in 0..4u64 {
                let got = t.get(&k(i)).await.unwrap();
                assert_eq!(&got[..], &[i as u8; 8][..], "backup served wrong value");
            }
            t.commit().await.unwrap();
        }
        let stats = c.stats();
        assert!(
            stats.replica_reads > 0,
            "no snapshot read was ever served by a backup: {stats:?}"
        );
        // And the backups really did the work (server-side counters).
        let served: u64 = cluster.replicas[0][1..]
            .iter()
            .map(|s| s.server.stats().replica_reads)
            .sum();
        assert!(served > 0, "server-side replica_reads stayed zero");
    });
}
