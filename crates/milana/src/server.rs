//! The MILANA shard server (§4): SEMEL storage plus the transaction
//! machinery — Algorithm-1 validation on the primary only, prepared-flag
//! piggybacking for client-local validation, relaxed replication of prepare
//! and outcome records, read leases, cooperative termination for dead
//! coordinators, and full primary failover (Algorithm 2).
//!
//! ## Durability model
//!
//! The storage [`Backend`] and the transaction table are held behind shared
//! handles owned by the harness, modeling *persistent memory that survives a
//! node crash* (§4.1: "updates to this table are logged in persistent memory
//! as they occur"). Killing a server's node destroys only its volatile
//! state: per-key `ts_latestRead` metadata, lease state, and in-flight
//! tasks — exactly the state §4.5's recovery protocol reconstructs or
//! shields with leases.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use batchkit::{BatchConfig, Batcher};
use flashsim::{Backend, Key, StoreError, Value};
use semel::replicate::replicate_traced;
use semel::shard::{ShardId, ShardMap};
use simkit::net::Addr;
use simkit::rpc::{recv_incoming, Batch, BatchReply, Incoming, Responder, RpcClient};
use simkit::time::SimTime;
use simkit::SimHandle;
use timesync::{ClientId, Timestamp, Version, WatermarkTracker};

use crate::msg::{TxnId, TxnQueryStatus, TxnRecord, TxnRequest, TxnResponse, TxnStatus};
use crate::table::TxnTable;

/// Lease parameters (§4.5). The lease duration must comfortably exceed the
/// worst-case client clock skew, since lease expiry (true time) is compared
/// against client-domain read timestamps.
#[derive(Debug, Clone)]
pub struct LeaseConfig {
    /// How far each grant extends the primary's read lease.
    pub duration: Duration,
    /// Renewal period (should be well under `duration`).
    pub renew_every: Duration,
}

impl Default for LeaseConfig {
    fn default() -> LeaseConfig {
        LeaseConfig {
            duration: Duration::from_millis(100),
            renew_every: Duration::from_millis(30),
        }
    }
}

/// Server timing knobs.
#[derive(Debug, Clone)]
pub struct ServerTuning {
    /// Budget for each replication RPC to a backup.
    pub repl_timeout: Duration,
    /// Master address; primaries heartbeat it so the master can detect
    /// failures and drive automatic failover. `None` disables heartbeats
    /// (harness-driven failover only).
    pub master: Option<Addr>,
    /// Heartbeat period when a master is configured.
    pub heartbeat_every: Duration,
    /// Read-lease configuration; `None` disables leases (faster, but a
    /// failover may then violate external consistency for reads — see
    /// §4.5's `ts_latestRead` discussion).
    pub lease: Option<LeaseConfig>,
    /// Keep at least this much version history regardless of watermark
    /// progress (§3.1: "keep all versions that are less than 5 seconds
    /// old", for read-only analytics). `None` prunes purely by watermark.
    pub history_window: Option<Duration>,
    /// A prepared transaction older than this triggers cooperative
    /// termination (its coordinator is presumed dead).
    pub ctp_after: Duration,
    /// Observability: metric registry plus (optionally enabled) structured
    /// trace sink, shared by every replica built from this tuning.
    pub obs: obskit::Obs,
    /// CTP scan period.
    pub ctp_scan_every: Duration,
    /// Fault-injection hook: when set, primaries vote yes on every prepare
    /// without running Algorithm-1 validation. Exists solely so chaos
    /// harnesses can seed a serializability bug and prove the history
    /// checker catches it. Shared (`Rc`) so one toggle reaches every
    /// replica built from this tuning.
    pub skip_validation: std::rc::Rc<std::cell::Cell<bool>>,
    /// Admission-control limits for client-facing work (gets and prepares).
    /// Internal traffic — replication, outcomes, leases, recovery — is
    /// never shed: dropping it amplifies the very overload being shed.
    pub admission: loadkit::AdmissionConfig,
    /// Group-commit replication: primaries coalesce prepare/outcome
    /// records (plus pending watermark relays) into one backup envelope
    /// per flush. `batch_max = 1` reproduces the per-record fan-out.
    pub batch: BatchConfig,
    /// Applied-watermark gossip period (readkit). Every replication
    /// envelope already carries an `AppliedFloor` record; this task keeps
    /// the floor advancing across *idle* stretches by submitting an empty
    /// `FloorSync` envelope on this period. `None` disables the task
    /// (floors then ride only on organic replication traffic).
    pub gossip_every: Option<Duration>,
    /// Records per anti-entropy catch-up page a cold-restarting replica
    /// pulls from its primary ([`TxnRequest::CatchUpFetch`]).
    pub catchup_batch: usize,
    /// Fault-injection hook: when set, a cold restart trusts its mounted
    /// flash state as-is — no anti-entropy catch-up, and the stale durable
    /// floor is adopted as the applied watermark. Exists solely so chaos
    /// harnesses can seed a durability bug (`--inject durability-skip`)
    /// and prove the `lost_acked_write` / `stale_backup_read` checkers
    /// catch it. Shared (`Rc`) so one toggle reaches every replica.
    pub skip_durability: std::rc::Rc<std::cell::Cell<bool>>,
    /// Clock-health tracking: when set, primaries estimate each client's
    /// timestamp-vs-arrival residual, refuse prepares whose `ts_commit`
    /// leaves the client's uncertainty window ε (a definite
    /// [`crate::msg::TxnResponse::ClockSuspect`] no-vote), and fence
    /// persistent outliers so one runaway clock cannot inflate everyone's
    /// abort rate. `None` (the default) disables tracking entirely.
    pub clock_health: Option<clockkit::ClockHealthConfig>,
    /// Fault-injection hook: when set, primaries keep *estimating* clock
    /// health but stop *enforcing* it — suspect prepares sail through.
    /// Exists solely so chaos harnesses can seed the `uncertainty-skip`
    /// fraud and prove the `clock_bound_breach` checker catches it. Shared
    /// (`Rc`) so one toggle reaches every replica built from this tuning.
    pub skip_uncertainty: std::rc::Rc<std::cell::Cell<bool>>,
}

impl Default for ServerTuning {
    fn default() -> ServerTuning {
        ServerTuning {
            repl_timeout: Duration::from_millis(25),
            master: None,
            heartbeat_every: Duration::from_millis(40),
            history_window: None,
            lease: Some(LeaseConfig::default()),
            ctp_after: Duration::from_millis(500),
            ctp_scan_every: Duration::from_millis(200),
            obs: obskit::Obs::new(),
            skip_validation: std::rc::Rc::new(std::cell::Cell::new(false)),
            admission: loadkit::AdmissionConfig::default(),
            batch: BatchConfig::default(),
            gossip_every: None,
            catchup_batch: 64,
            skip_durability: std::rc::Rc::new(std::cell::Cell::new(false)),
            clock_health: None,
            skip_uncertainty: std::rc::Rc::new(std::cell::Cell::new(false)),
        }
    }
}

/// Admission cost of a snapshot read (`Get`/`GetAny`).
pub const COST_GET: u64 = 1;
/// Admission cost of a 2PC prepare: validation plus synchronous
/// replication to a backup quorum, far heavier than a read.
pub const COST_PREPARE: u64 = 4;

/// Static + initial-role configuration of one MILANA shard replica.
#[derive(Debug, Clone)]
pub struct TxnServerConfig {
    /// Which shard this replica serves.
    pub shard: ShardId,
    /// This replica's service address.
    pub addr: Addr,
    /// The shard's backups (meaningful when primary).
    pub backups: Vec<Addr>,
    /// Initial role.
    pub is_primary: bool,
    /// Clients feeding the GC watermark.
    pub clients: Vec<ClientId>,
    /// The node whose `AppliedFloor` stream this backup trusts from birth
    /// (the shard primary at cluster build). `None` on a restarted or
    /// provisioned replica: it missed an unknown prefix of the stream, so
    /// its applied watermark stays frozen until the next promotion's
    /// `InstallLog` re-syncs it. Irrelevant on primaries.
    pub primary_node: Option<simkit::net::NodeId>,
    /// True when this replica is coming back from a *power failure*: its
    /// DRAM — transaction table included — is gone and only flash
    /// survived. The server boots not-serving, mounts the backend
    /// (rebuilding the mapping table and discarding torn pages),
    /// rehydrates the write-floor promises from the durable floor record,
    /// and runs anti-entropy catch-up against the current primary before
    /// opening for business. Pass a *fresh, empty* transaction table with
    /// this flag — whatever the old table held died with the RAM.
    pub cold_start: bool,
    /// Timing knobs.
    pub tuning: ServerTuning,
}

/// Live-migration state held by a source primary between `MigrationStart`
/// and `MigrationCutover` (§ rebalance). Idempotent: the engine may resend
/// any control message after a fault.
#[derive(Debug, Clone)]
struct MigrationState {
    /// Shard gaining the moving keys (equals the source shard on a
    /// whole-shard move to a new replica group).
    to: ShardId,
    /// Map epoch at which the migration began.
    epoch: u64,
    /// Destination replica addresses (primary first) for dual-apply.
    dest: Vec<Addr>,
    /// True once `MigrationFence` arrived: new prepares touching moving
    /// keys get a definite `StaleEpoch` no-vote so the undecided set can
    /// drain for cutover.
    fenced: bool,
}

struct ServerState {
    is_primary: bool,
    backups: Vec<Addr>,
    /// False while recovering (requests answered `NotReady`).
    serving: bool,
    watermarks: WatermarkTracker,
    /// Write-floor promises (readkit): per-client "no future prepare at or
    /// below" reports. Unlike the GC `watermarks`, active snapshots do not
    /// hold these back, so the min tracks wall time closely — it is the
    /// `AppliedFloor` a primary streams to its backups, certifying them to
    /// serve snapshot reads.
    floors: WatermarkTracker,
    /// As primary: our lease is valid until this true-time instant.
    lease_until: SimTime,
    /// As backup: the latest lease expiry we ever granted.
    max_granted: SimTime,
    /// As backup: the primary we currently accept lease requests from.
    known_primary: Option<Addr>,
    /// Outcomes that arrived before their prepare record (backup side).
    pending_outcomes: perfkit::FastMap<TxnId, bool>,
    /// Prepares whose replication is still in flight. A retransmitted
    /// Prepare for one of these must NOT be answered from the table: the
    /// record is installed before replication completes, and an early
    /// `Vote{ok}` would acknowledge a prepare that may yet fail
    /// replication and abort — the coordinator could then commit a
    /// transaction recorded on no backup, which a primary crash erases.
    replicating: perfkit::FastSet<TxnId>,
    /// Primary: per-client watermark reports received since the last
    /// replication flush, relayed to backups by piggybacking on the next
    /// batched envelope (a `BTreeMap` so the piggyback order — and hence
    /// the run — is deterministic).
    wm_relay: std::collections::BTreeMap<ClientId, Timestamp>,
    /// Source-primary migration state (None when no rebalance touches
    /// this shard).
    migration: Option<MigrationState>,
    /// Primary: sequence number of the next `AppliedFloor` appended to a
    /// replication envelope. Reset to 0 by a promotion, whose `InstallLog`
    /// re-baselines every backup.
    floor_seq: u64,
    /// Backup: the node whose floor stream we accept (initial primary or
    /// the latest `InstallLog` sender). Floors from anyone else — e.g. a
    /// deposed primary still flushing — are ignored.
    floor_primary: Option<simkit::net::NodeId>,
    /// Backup: the next floor `seq` that may advance the applied
    /// watermark. `None` = the stream has a gap (a lost envelope may hold
    /// an outcome a later floor claims to cover), so the watermark stays
    /// frozen until an `InstallLog` re-baselines it.
    floor_expected: Option<u64>,
    /// Backup, while no floor stream is trusted (`floor_primary` is
    /// `None`, i.e. mid cold-restart catch-up): the latest *contiguous*
    /// run `(start, next)` of floor seqs observed per sender, covering
    /// `start..next`. The anti-entropy splice consults this: envelopes
    /// that arrived mid-sweep had their data installed by the live
    /// replication path, so the stream may resume after them instead of
    /// freezing on a phantom gap. Cleared once a stream is trusted.
    floor_runs: std::collections::BTreeMap<simkit::net::NodeId, (u64, u64)>,
}

/// Counters for observability and the experiment harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnServerStats {
    /// Gets served.
    pub gets: u64,
    /// Prepare requests validated successfully.
    pub prepares_ok: u64,
    /// Prepare requests rejected by validation.
    pub prepares_aborted: u64,
    /// Commit outcomes applied.
    pub commits: u64,
    /// Abort outcomes applied.
    pub aborts: u64,
    /// Transactions resolved by cooperative termination.
    pub ctp_resolutions: u64,
    /// Snapshot reads served from this replica *as a backup* (readkit).
    pub replica_reads: u64,
    /// Backup reads declined because the applied watermark did not cover
    /// the snapshot.
    pub too_stale: u64,
    /// Prepares refused by the clock-health tracker (suspect residual or
    /// fenced client). A subset of `prepares_aborted`-style no-votes but
    /// counted separately: these never reached Algorithm-1 validation.
    pub clock_suspects: u64,
    /// Clients this replica fenced as persistent clock outliers (fence
    /// transitions, not currently-fenced count).
    pub clock_fences: u64,
}

/// One MILANA shard replica. Cloning shares the server.
#[derive(Clone)]
pub struct TxnServer {
    handle: SimHandle,
    backend: Backend,
    table: Rc<RefCell<TxnTable>>,
    state: Rc<RefCell<ServerState>>,
    stats: Rc<RefCell<TxnServerStats>>,
    rpc: RpcClient,
    map: Rc<RefCell<ShardMap>>,
    /// Sequence stamp for `ReplicaAck` trace events.
    repl_seq: Rc<std::cell::Cell<u64>>,
    /// Overload gate for client-facing work (gets and prepares).
    admission: Rc<loadkit::Admission>,
    /// Latched by the first `MigrationCutover` this replica processes, so
    /// engine retries cannot re-emit ownership trace events.
    cutover_seen: Rc<std::cell::Cell<bool>>,
    /// Per-client clock-health estimates (`None` when
    /// [`ServerTuning::clock_health`] is unset).
    clock_health: Option<Rc<RefCell<clockkit::ClockHealth>>>,
    cfg: Rc<TxnServerConfig>,
    /// Group-commit replication batcher: coalesces `ReplPrepare` /
    /// `ReplOutcome` records (plus pending watermark relays) into one
    /// envelope per backup. Inert on backups — only primary code paths
    /// submit to it; the target backup set is read from the live state at
    /// flush time so promotion keeps working.
    repl_batch: Batcher<TxnRequest, bool>,
    /// Scratch buffer for the validate hot loop: the write-key list is
    /// rebuilt per prepare but never escapes it, so the allocation is
    /// reused across prepares. Never held across an await.
    scratch_write_keys: Rc<RefCell<Vec<Key>>>,
}

impl std::fmt::Debug for TxnServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnServer")
            .field("shard", &self.cfg.shard)
            .field("addr", &self.cfg.addr)
            .field("primary", &self.state.borrow().is_primary)
            .finish()
    }
}

impl TxnServer {
    /// Spawns a MILANA server on `cfg.addr.node`.
    ///
    /// `backend` and `table` model persistent memory: pass the same handles
    /// back in when respawning a replica after a crash.
    pub fn spawn(
        handle: &SimHandle,
        backend: Backend,
        table: Rc<RefCell<TxnTable>>,
        map: Rc<RefCell<ShardMap>>,
        cfg: TxnServerConfig,
    ) -> TxnServer {
        let state = ServerState {
            is_primary: cfg.is_primary,
            backups: cfg.backups.clone(),
            // A cold start answers `NotReady` until the mount scan and
            // anti-entropy catch-up complete.
            serving: !cfg.cold_start,
            watermarks: WatermarkTracker::new(cfg.clients.iter().copied()),
            floors: WatermarkTracker::new(cfg.clients.iter().copied()),
            lease_until: SimTime::ZERO,
            max_granted: SimTime::ZERO,
            known_primary: None,
            pending_outcomes: perfkit::FastMap::default(),
            replicating: perfkit::FastSet::default(),
            wm_relay: std::collections::BTreeMap::new(),
            migration: None,
            floor_seq: 0,
            floor_primary: cfg.primary_node,
            floor_expected: Some(0),
            floor_runs: std::collections::BTreeMap::new(),
        };
        let admission = Rc::new(loadkit::Admission::observed(
            cfg.tuning.admission.clone(),
            &cfg.tuning.obs,
            cfg.addr.node.0 as u64,
        ));
        let state = Rc::new(RefCell::new(state));
        let rpc = RpcClient::new(handle, cfg.addr.node, cfg.addr.port + 1);
        let cfg = Rc::new(cfg);
        let repl_seq = Rc::new(std::cell::Cell::new(0));
        let repl_batch = Self::spawn_repl_batcher(handle, &rpc, &state, &cfg, &repl_seq);
        let server = TxnServer {
            handle: handle.clone(),
            backend,
            table,
            state,
            stats: Rc::new(RefCell::new(TxnServerStats::default())),
            rpc,
            map,
            repl_seq,
            admission,
            cutover_seen: Rc::new(std::cell::Cell::new(false)),
            clock_health: cfg
                .tuning
                .clock_health
                .clone()
                .map(|c| Rc::new(RefCell::new(clockkit::ClockHealth::new(c)))),
            cfg,
            repl_batch,
            scratch_write_keys: Rc::new(RefCell::new(Vec::new())),
        };
        // A restarted replica must not reuse stale volatile key metadata.
        server.table.borrow_mut().rebuild_key_meta();
        server.spawn_loop();
        if server.state.borrow().is_primary {
            server.spawn_primary_tasks();
        }
        if server.cfg.cold_start {
            let me = server.clone();
            let node = server.cfg.addr.node;
            server.handle.spawn_on(node, async move {
                me.cold_start().await;
            });
        }
        server
    }

    /// Builds the group-commit batcher. A flush drains pending watermark
    /// relays, prepends them to the drained records, and replicates the
    /// whole envelope to the *current* backup set; every drained record
    /// succeeds (true) only when `f` backups acknowledged the whole batch.
    fn spawn_repl_batcher(
        handle: &SimHandle,
        rpc: &RpcClient,
        state: &Rc<RefCell<ServerState>>,
        cfg: &Rc<TxnServerConfig>,
        repl_seq: &Rc<std::cell::Cell<u64>>,
    ) -> Batcher<TxnRequest, bool> {
        let reg = &cfg.tuning.obs.registry;
        let envelopes = reg.counter(&format!("milana.node{}.repl_envelopes", cfg.addr.node.0));
        let records = reg.counter(&format!("milana.node{}.repl_records", cfg.addr.node.0));
        let h = handle.clone();
        let rpc = rpc.clone();
        let state2 = Rc::clone(state);
        let cfg2 = Rc::clone(cfg);
        let repl_seq = Rc::clone(repl_seq);
        Batcher::new(
            handle,
            cfg.addr.node,
            &format!("milana.repl.node{}", cfg.addr.node.0),
            cfg.tuning.batch,
            cfg.tuning.obs.clone(),
            move |items: Vec<TxnRequest>| {
                let h = h.clone();
                let rpc = rpc.clone();
                let cfg = Rc::clone(&cfg2);
                let n = items.len();
                let (backups, need, wire) = {
                    let mut st = state2.borrow_mut();
                    let mut wire: Vec<TxnRequest> = std::mem::take(&mut st.wm_relay)
                        .into_iter()
                        .map(|(client, ts)| TxnRequest::Watermark { client, ts })
                        .collect();
                    wire.extend(items);
                    // Append the applied floor: every record with a commit
                    // stamp below `ts` is in this envelope or an earlier
                    // one, so a backup that saw the whole stream
                    // (contiguous seq) owns complete chains below `ts`.
                    // Appended last so same-envelope outcomes are applied
                    // by the time the floor covering them is processed; an
                    // empty tracker reports MAX, which is sent as ZERO (a
                    // no-op floor) to keep `seq` contiguous.
                    let floor = st.floors.watermark();
                    let floor = if floor == Timestamp::MAX {
                        Timestamp::ZERO
                    } else {
                        floor
                    };
                    let seq = st.floor_seq;
                    st.floor_seq += 1;
                    wire.push(TxnRequest::AppliedFloor { seq, ts: floor });
                    (st.backups.clone(), st.backups.len() / 2, wire)
                };
                if !backups.is_empty() {
                    envelopes.add(backups.len() as u64);
                    records.add(n as u64);
                }
                let seq = repl_seq.replace(repl_seq.get() + 1);
                async move {
                    let ok = replicate_traced::<Batch<TxnRequest>, BatchReply<TxnResponse>>(
                        &h,
                        &rpc,
                        &backups,
                        Batch { items: wire },
                        need,
                        cfg.tuning.repl_timeout,
                        |r| r.items.iter().all(|i| matches!(i, TxnResponse::Ack)),
                        &cfg.tuning.obs.tracer,
                        seq,
                    )
                    .await;
                    vec![ok; n]
                }
            },
        )
    }

    fn spawn_loop(&self) {
        let mailbox = self.handle.bind(self.cfg.addr);
        let me = self.clone();
        let h = self.handle.clone();
        let node = self.cfg.addr.node;
        self.handle.spawn_on(node, async move {
            while let Some((incoming, from, resp)) = recv_incoming::<TxnRequest>(&h, &mailbox).await
            {
                let me2 = me.clone();
                h.spawn_on(node, async move {
                    match incoming {
                        Incoming::One(req) => me2.handle_request(req, from, resp).await,
                        Incoming::Batch(items) => me2.handle_batch(items, from, resp).await,
                    }
                });
            }
        });
    }

    fn spawn_primary_tasks(&self) {
        if let Some(master) = self.cfg.tuning.master {
            let me = self.clone();
            self.handle.spawn_on(self.cfg.addr.node, async move {
                loop {
                    let _ = semel::master::send_heartbeat(
                        &me.rpc,
                        master,
                        me.cfg.shard,
                        me.cfg.addr,
                        me.cfg.tuning.repl_timeout,
                    )
                    .await;
                    me.handle.sleep(me.cfg.tuning.heartbeat_every).await;
                }
            });
        }
        if let Some(lease) = self.cfg.tuning.lease.clone() {
            let me = self.clone();
            self.handle.spawn_on(self.cfg.addr.node, async move {
                loop {
                    me.renew_lease(&lease).await;
                    me.handle.sleep(lease.renew_every).await;
                }
            });
        }
        let me = self.clone();
        let scan = self.cfg.tuning.ctp_scan_every;
        self.handle.spawn_on(self.cfg.addr.node, async move {
            loop {
                me.handle.sleep(scan).await;
                me.ctp_scan().await;
            }
        });
        if let Some(every) = self.cfg.tuning.gossip_every {
            let me = self.clone();
            self.handle.spawn_on(self.cfg.addr.node, async move {
                loop {
                    me.handle.sleep(every).await;
                    let idle = {
                        let st = me.state.borrow();
                        st.is_primary && st.serving && !st.backups.is_empty()
                    };
                    if idle {
                        // An empty payload; the flush appends the floor.
                        me.repl_batch.submit_nowait(TxnRequest::FloorSync);
                    }
                }
            });
        }
    }

    fn trace(&self, ev: obskit::TraceEvent) {
        self.cfg
            .tuning
            .obs
            .tracer
            .record(self.handle.now().as_nanos(), ev);
    }

    async fn renew_lease(&self, lease: &LeaseConfig) {
        let until = self.handle.now() + lease.duration;
        let backups = self.state.borrow().backups.clone();
        let need = backups.len() / 2;
        let ok = replicate_traced::<TxnRequest, TxnResponse>(
            &self.handle,
            &self.rpc,
            &backups,
            TxnRequest::LeaseGrant { until },
            need,
            self.cfg.tuning.repl_timeout,
            |r| matches!(r, TxnResponse::LeaseGranted { .. }),
            &self.cfg.tuning.obs.tracer,
            self.repl_seq.replace(self.repl_seq.get() + 1),
        )
        .await;
        if ok {
            let mut st = self.state.borrow_mut();
            if until > st.lease_until {
                st.lease_until = until;
            }
        }
    }

    /// The storage backend (persistent handle).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The transaction table (persistent handle).
    pub fn table(&self) -> &Rc<RefCell<TxnTable>> {
        &self.table
    }

    /// Server counters.
    pub fn stats(&self) -> TxnServerStats {
        *self.stats.borrow()
    }

    /// This replica's configuration.
    pub fn config(&self) -> &TxnServerConfig {
        &self.cfg
    }

    /// True if this replica currently acts as primary.
    pub fn is_primary(&self) -> bool {
        self.state.borrow().is_primary
    }

    /// True once this replica answers requests (false mid-recovery: a
    /// promotion's log merge or a cold restart's mount + catch-up).
    pub fn is_serving(&self) -> bool {
        self.state.borrow().serving
    }

    fn latest_committed(&self, key: &Key) -> Option<Version> {
        self.backend.versions(key).first().copied()
    }

    /// True while this replica is still a member of its shard's replica
    /// group in `map`. A completed whole-shard move removes the old group
    /// from the map, so a stale client reaching the old primary is told
    /// the key moved. (A mid-failover promotion keeps the promoted backup
    /// in the group, so failover never trips this.)
    fn in_group(&self, map: &ShardMap) -> bool {
        match map.group_opt(self.cfg.shard) {
            Some(g) => g.primary == self.cfg.addr || g.backups.contains(&self.cfg.addr),
            // Migration destination before cutover: its shard id enters
            // the map only when the cutover installs it.
            None => true,
        }
    }

    /// Rebalance routing check for a primary-path request: `true` if any
    /// of `keys` is no longer owned here per the (shared, newest) map.
    fn moved_away<'a>(&self, map: &ShardMap, mut keys: impl Iterator<Item = &'a Key>) -> bool {
        !self.in_group(map) || keys.any(|k| map.shard_for(k) != self.cfg.shard)
    }

    fn lease_valid_for(&self, at: Timestamp) -> bool {
        match &self.cfg.tuning.lease {
            None => true,
            Some(_) => {
                let until = self.state.borrow().lease_until;
                at < Timestamp::from_sim(until)
            }
        }
    }

    /// Overload gate for client-facing work. Refuses (and replies `Shed`)
    /// when the request's deadline already expired or the cost-weighted
    /// admission queue is full; otherwise returns a permit that must be
    /// held for the duration of the handler, plus the responder back.
    fn admit(&self, cost: u64, resp: Responder) -> Result<(loadkit::Permit, Responder), ()> {
        let now = self.handle.now();
        if resp.deadline().expired(now) {
            let shed = self.admission.shed_deadline(now.as_nanos());
            resp.reply(TxnResponse::Shed(shed));
            return Err(());
        }
        match self.admission.try_admit(now.as_nanos(), cost) {
            Ok(permit) => Ok((permit, resp)),
            Err(shed) => {
                resp.reply(TxnResponse::Shed(shed));
                Err(())
            }
        }
    }

    async fn handle_request(&self, req: TxnRequest, from: Addr, resp: Responder) {
        match req {
            TxnRequest::Get { key, at, client } => {
                let Ok((_permit, resp)) = self.admit(COST_GET, resp) else {
                    return;
                };
                self.handle_get(key, at, client, resp).await
            }
            TxnRequest::GetAny { key, at } => {
                let Ok((_permit, resp)) = self.admit(COST_GET, resp) else {
                    return;
                };
                // Any live replica may serve this (backups too): the reply
                // carries no local-validation information, so the caller
                // must validate remotely (§4.6).
                if !self.state.borrow().serving {
                    resp.reply(TxnResponse::NotReady);
                    return;
                }
                {
                    // Replica reads also forward after a cutover: serving a
                    // frozen (soon to be GC'd) copy would surface spurious
                    // NotFound once GC runs.
                    let map = self.map.borrow();
                    if self.moved_away(&map, std::iter::once(&key)) {
                        resp.reply(TxnResponse::Moved { epoch: map.epoch() });
                        return;
                    }
                }
                let r = match self.backend.get_at(&key, at).await {
                    Ok(vv) => TxnResponse::Value {
                        version: vv.version,
                        value: vv.value,
                        prepared: true, // poison local validation by design
                    },
                    Err(StoreError::NotFound) => TxnResponse::NotFound,
                    Err(StoreError::SnapshotUnavailable(v)) => TxnResponse::SnapshotUnavailable(v),
                    Err(_) => TxnResponse::Capacity,
                };
                resp.reply(r);
            }
            TxnRequest::ReadAt { key, at, client } => {
                let Ok((_permit, resp)) = self.admit(COST_GET, resp) else {
                    return;
                };
                self.handle_read_at(key, at, client, resp).await
            }
            TxnRequest::AppliedFloor { seq, ts } => {
                self.accept_floor(seq, ts, from);
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::FloorSync => {
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::Prepare {
                txid,
                ts_commit,
                reads,
                writes,
                participants,
                epoch,
            } => {
                // A shed prepare is a definite no-vote: nothing validated,
                // nothing installed — the coordinator can abort safely.
                let Ok((_permit, resp)) = self.admit(COST_PREPARE, resp) else {
                    return;
                };
                // `None` = duplicate of an in-flight prepare: stay silent
                // (the original handler answers once replication settles).
                if let Some(r) = self
                    .do_prepare(txid, ts_commit, reads, writes, participants, epoch)
                    .await
                {
                    resp.reply(r);
                }
            }
            TxnRequest::Outcome { txid, commit } => {
                self.apply_outcome(txid, commit).await;
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::Watermark { client, ts } => {
                self.merge_watermark(client, ts);
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::FloorReport { client, ts } => {
                self.merge_floor(client, ts);
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::ReplPrepare(record) => {
                self.backup_install_prepare(record).await;
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::ReplOutcome { txid, commit } => {
                self.backup_apply_outcome(txid, commit).await;
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::QueryTxn { txid } => {
                let status = match self.table.borrow().status(txid) {
                    Some(TxnStatus::Committed) => TxnQueryStatus::Committed,
                    Some(TxnStatus::Aborted) => TxnQueryStatus::Aborted,
                    Some(TxnStatus::Prepared) => TxnQueryStatus::Prepared,
                    None => TxnQueryStatus::Unknown,
                };
                resp.reply(TxnResponse::Status(status));
            }
            TxnRequest::RequestLog => {
                resp.reply(TxnResponse::Log {
                    records: self.table.borrow().all_records(),
                });
            }
            TxnRequest::InstallLog { records } => {
                {
                    let mut table = self.table.borrow_mut();
                    for r in records.clone() {
                        table.install(r);
                    }
                }
                // Catch up data for committed transactions we have not
                // already applied locally.
                for r in records {
                    if r.status == TxnStatus::Committed && !self.table.borrow().is_applied(r.txid) {
                        let items = r
                            .writes
                            .iter()
                            .map(|(k, v)| {
                                (
                                    k.clone(),
                                    v.clone(),
                                    Version::new(r.ts_commit, r.txid.client),
                                )
                            })
                            .collect();
                        let _ = self.backend.apply_batch_unordered(items).await;
                        self.table.borrow_mut().mark_applied(r.txid);
                    }
                }
                {
                    let mut st = self.state.borrow_mut();
                    st.known_primary = Some(Addr {
                        node: from.node,
                        port: self.cfg.addr.port,
                    });
                    // The merged log plus the committed-delta apply above
                    // make this replica complete up to the sender's merge
                    // point, healing any gap in the old floor stream. The
                    // new primary's stream starts at seq 0; adopt it.
                    st.floor_primary = Some(from.node);
                    st.floor_expected = Some(0);
                    st.floor_runs.clear();
                }
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::LeaseGrant { until } => {
                let grantor = {
                    let mut st = self.state.borrow_mut();
                    let requester = Addr {
                        node: from.node,
                        port: self.cfg.addr.port,
                    };
                    let accept = match st.known_primary {
                        Some(p) => p == requester,
                        None => true,
                    };
                    if accept {
                        st.known_primary = Some(requester);
                        if until > st.max_granted {
                            st.max_granted = until;
                        }
                        true
                    } else {
                        false
                    }
                };
                if grantor {
                    resp.reply(TxnResponse::LeaseGranted { until });
                } else {
                    resp.reply(TxnResponse::NotReady);
                }
            }
            TxnRequest::LeaseQuery => {
                resp.reply(TxnResponse::LeaseInfo {
                    max_granted: self.state.borrow().max_granted,
                });
            }
            TxnRequest::Promote { backups } => {
                self.recover_as_primary(backups).await;
                resp.reply(TxnResponse::PromoteOk);
            }
            TxnRequest::MigrationStart {
                from,
                to,
                epoch,
                dest,
            } => {
                // Source primary: remember the destination for dual-apply
                // and announce ownership of the moving range so the
                // single-owner checker sees who holds it. Destination
                // replicas just ack — bulk-copy records carry their own
                // versions. Idempotent: a retried start only overwrites.
                if from == self.cfg.shard && self.state.borrow().is_primary {
                    let first = self.state.borrow().migration.is_none();
                    self.state.borrow_mut().migration = Some(MigrationState {
                        to,
                        epoch,
                        dest,
                        fenced: false,
                    });
                    if first {
                        self.trace(obskit::TraceEvent::ShardOwned {
                            shard: to.0 as u64,
                            epoch,
                            owner: self.cfg.addr.node.0 as u64,
                        });
                    }
                }
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::MigrateRecords { records } => {
                let _ = self.backend.apply_batch_unordered(records).await;
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::MigrationFence => {
                let released = {
                    let mut st = self.state.borrow_mut();
                    match st.migration.as_mut() {
                        Some(m) if !m.fenced => {
                            m.fenced = true;
                            Some((m.to, m.epoch))
                        }
                        _ => None,
                    }
                };
                if let Some((to, epoch)) = released {
                    // Fenced = this primary no longer accepts new prepares
                    // for the moving range: ownership is released (the
                    // undecided set is frozen and only drains from here).
                    self.trace(obskit::TraceEvent::ShardReleased {
                        shard: to.0 as u64,
                        epoch,
                        owner: self.cfg.addr.node.0 as u64,
                    });
                }
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::MigrationDrain => {
                // A moving-key transaction stays pending until it is both
                // decided *and* (for commits) applied to the backend:
                // `apply_outcome` flips the table status before awaiting the
                // backend apply, and the engine's final cutover sweep reads
                // the backend — a decided-but-unapplied write reported as
                // drained could be missed by that sweep and lost to GC if
                // its fire-and-forget dual-apply cast was also dropped.
                let map = self.map.borrow();
                let table = self.table.borrow();
                let pending = table
                    .all_records()
                    .iter()
                    .filter(|r| {
                        let undecided = r.status == TxnStatus::Prepared;
                        let unapplied =
                            r.status == TxnStatus::Committed && !table.is_applied(r.txid);
                        (undecided || unapplied)
                            && r.writes.iter().any(|(k, _)| map.key_is_moving(k))
                    })
                    .count() as u64;
                resp.reply(TxnResponse::Drained { pending });
            }
            TxnRequest::MigrationCutover { to, epoch } => {
                // Source side: the map has flipped; moved keys now answer
                // `Moved` until GC. Destination side: announce ownership of
                // the range. The destination is identified positively — the
                // carried `to` shard id plus membership in its (flipped) map
                // group — never by the absence of local migration state,
                // which a source primary promoted mid-migration (the
                // promoted backup saw no `MigrationStart`) also exhibits.
                // Latched (`cutover_seen`) so engine retries cannot re-emit
                // transitions the single-owner checker reads.
                let is_dest = {
                    let mut st = self.state.borrow_mut();
                    st.migration = None;
                    st.is_primary && self.cfg.shard == to && self.in_group(&self.map.borrow())
                };
                let first = !self.cutover_seen.replace(true);
                if is_dest && first {
                    self.trace(obskit::TraceEvent::ShardOwned {
                        shard: to.0 as u64,
                        epoch,
                        owner: self.cfg.addr.node.0 as u64,
                    });
                }
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::MigrationGc => {
                // Forwarding term over: drop every key the flipped map no
                // longer routes here. After a whole-shard move the shard id
                // still matches but this replica left the serving group, so
                // everything goes.
                let map = self.map.borrow().clone();
                let evicted = !self.in_group(&map);
                let mut dropped = 0u64;
                for key in self.backend.keys() {
                    if evicted || map.shard_for(&key) != self.cfg.shard {
                        self.backend.delete(&key);
                        dropped += 1;
                    }
                }
                self.cfg
                    .tuning
                    .obs
                    .registry
                    .counter("migration_gc_records")
                    .add(dropped);
                resp.reply(TxnResponse::Ack);
            }
            TxnRequest::CatchUpFetch { cursor, limit } => {
                // Recovery-plane traffic: never admission-gated (shedding
                // it only prolongs the outage it is healing). Only a
                // serving primary answers; a mid-promotion primary replies
                // NotReady and the cold replica retries.
                let ready = {
                    let st = self.state.borrow();
                    st.is_primary && st.serving
                };
                if !ready {
                    resp.reply(TxnResponse::NotReady);
                    return;
                }
                let all = self.table.borrow().all_records();
                let start = match cursor {
                    Some(c) => all.partition_point(|r| r.txid <= c),
                    None => 0,
                };
                let end = start
                    .saturating_add(limit.clamp(1, 4096) as usize)
                    .min(all.len());
                let records: Vec<TxnRecord> = all[start..end].to_vec();
                let next = if end < all.len() {
                    records.last().map(|r| r.txid)
                } else {
                    None
                };
                // One borrow for (seq, floor) so the pair is consistent:
                // `floor_seq` is where the splice resumes the live stream,
                // and every outcome `floor` covers was flushed in an
                // envelope strictly below it.
                let (floor_seq, floor) = {
                    let st = self.state.borrow();
                    let f = st.floors.watermark();
                    (
                        st.floor_seq,
                        if f == Timestamp::MAX {
                            Timestamp::ZERO
                        } else {
                            f
                        },
                    )
                };
                resp.reply(TxnResponse::CatchUpRecords {
                    records,
                    next,
                    floor_seq,
                    floor,
                });
            }
        }
    }

    /// Merges one client watermark report, advances the backend GC floor,
    /// and (on primaries) queues the report for relay to the backups on the
    /// next replication flush — the piggyback that replaces the standalone
    /// per-replica watermark tick in the steady state.
    fn merge_watermark(&self, client: ClientId, ts: Timestamp) {
        let (mut wm, primary) = {
            let mut st = self.state.borrow_mut();
            st.watermarks.update(client, ts);
            if st.is_primary && !st.backups.is_empty() {
                st.wm_relay.insert(client, ts);
            }
            (st.watermarks.watermark(), st.is_primary)
        };
        // The tunable GC window (§3.1): retain at least `history_window`
        // of versions for analytics readers.
        if let Some(window) = self.cfg.tuning.history_window {
            let floor = Timestamp::from_sim(self.handle.now()).before(window);
            wm = wm.min(floor);
        }
        if !primary {
            // A backup prunes only below its *applied* watermark: a
            // version above it may still be the newest one a covered
            // snapshot elsewhere can read, and the chain completeness the
            // floor promised must survive GC.
            wm = wm.min(self.table.borrow().applied_watermark());
        }
        if wm > Timestamp::ZERO && wm < Timestamp::MAX {
            self.backend.set_watermark(wm);
        }
    }

    /// Merges one client write-floor promise (readkit). On a primary the
    /// tracker min *is* the applied watermark: its own chains are complete
    /// by construction (every commit for the shard lands here first), and
    /// the promise rules out any future stamp at or below the min — the
    /// `do_prepare` floor fence rejects stragglers that would break it.
    /// Backups ignore direct reports; their applied watermark only moves
    /// along the primary's in-order `AppliedFloor` stream, which is what
    /// makes it a completeness claim.
    fn merge_floor(&self, client: ClientId, ts: Timestamp) {
        let (floor, primary) = {
            let mut st = self.state.borrow_mut();
            st.floors.update(client, ts);
            (st.floors.watermark(), st.is_primary)
        };
        if primary && floor < Timestamp::MAX {
            self.table.borrow_mut().advance_applied_watermark(floor);
            // Stamp the floor into every subsequent flash page program so a
            // cold restart can recover the promise from the mount scan.
            self.backend.note_floor(floor);
        }
    }

    /// Backup side of an [`TxnRequest::AppliedFloor`] record: advance the
    /// applied watermark iff the floor extends the contiguous stream from
    /// the trusted primary (see the `floor_*` state field docs).
    fn accept_floor(&self, seq: u64, ts: Timestamp, from: Addr) {
        let mut st = self.state.borrow_mut();
        if st.is_primary {
            return;
        }
        if st.floor_primary.is_none() {
            // Mid cold-restart catch-up: no stream is trusted yet, but the
            // envelope's data was installed by the live replication path.
            // Remember the contiguous run so the splice can resume after
            // it (see `ServerState::floor_runs`) instead of mistaking
            // these envelopes for a gap.
            let run = st.floor_runs.entry(from.node).or_insert((seq, seq));
            if seq == run.1 {
                run.1 = seq + 1;
            } else if seq > run.1 {
                *run = (seq, seq + 1);
            }
            return;
        }
        if st.floor_primary != Some(from.node) {
            return;
        }
        match st.floor_expected {
            Some(e) if seq == e => {
                st.floor_expected = Some(seq + 1);
                drop(st);
                if ts < Timestamp::MAX {
                    self.table.borrow_mut().advance_applied_watermark(ts);
                    // Make the promise durable: a cold restart rehydrates
                    // its floor tracker from the mount scan's recovered
                    // floor (the max over intact page OOB stamps).
                    self.backend.note_floor(ts);
                }
            }
            // An older (duplicate) floor teaches nothing new; ignore.
            Some(e) if seq < e => {}
            // Gap: an envelope this floor covers never arrived. Keep
            // applying data, but freeze the watermark until an
            // `InstallLog` re-baselines the stream — unless the
            // durability-skip fraud hook is on, in which case the replica
            // pretends the gap never happened and splices blindly into
            // the live stream. Its watermark then advances over commits
            // it never recovered: exactly the bug the `lost_acked_write`
            // checker exists to catch.
            _ => {
                if self.cfg.tuning.skip_durability.get() {
                    st.floor_expected = Some(seq + 1);
                    drop(st);
                    if ts < Timestamp::MAX {
                        self.table.borrow_mut().advance_applied_watermark(ts);
                        self.backend.note_floor(ts);
                    }
                } else {
                    st.floor_expected = None;
                }
            }
        }
    }

    /// Serves a [`TxnRequest::ReadAt`] — a snapshot read addressed to this
    /// specific replica. Primaries (including backups promoted since the
    /// client routed) serve it as a plain get; backups answer from their
    /// own chains when the applied watermark covers `at`, with the same
    /// epoch fencing and prepared-flag piggybacking as the primary path.
    async fn handle_read_at(&self, key: Key, at: Timestamp, client: ClientId, resp: Responder) {
        let primary = {
            let st = self.state.borrow();
            if !st.serving {
                resp.reply(TxnResponse::NotReady);
                return;
            }
            st.is_primary
        };
        if primary {
            return self.handle_get(key, at, client, resp).await;
        }
        {
            // Backups answer `Moved` exactly like primaries: serving a
            // frozen pre-cutover copy would miss post-migration commits.
            let map = self.map.borrow();
            if self.moved_away(&map, std::iter::once(&key)) {
                resp.reply(TxnResponse::Moved { epoch: map.epoch() });
                return;
            }
        }
        let wm = self.table.borrow().applied_watermark();
        let depth = self.admission.in_flight();
        if at > wm {
            self.stats.borrow_mut().too_stale += 1;
            resp.reply(TxnResponse::TooStale { watermark: wm });
            return;
        }
        // The prepared flag has primary semantics here: `install` keeps
        // the key markers live on backups, and any commit below the floor
        // whose outcome this replica missed is still marked Prepared (the
        // floor is only accepted once the outcome's envelope was), so
        // local validation is poisoned exactly when it would be on the
        // primary. Recording `at` in ts_latestRead is harmless: `at ≤ wm`
        // is below every future commit stamp.
        let prepared = self.table.borrow_mut().note_read(&key, at);
        let inner = match self.backend.get_at(&key, at).await {
            Ok(vv) => TxnResponse::Value {
                version: vv.version,
                value: vv.value,
                prepared,
            },
            Err(StoreError::NotFound) => TxnResponse::NotFound,
            Err(StoreError::SnapshotUnavailable(v)) => TxnResponse::SnapshotUnavailable(v),
            Err(_) => TxnResponse::Capacity,
        };
        if matches!(inner, TxnResponse::Value { .. } | TxnResponse::NotFound) {
            // Only data replies claim watermark coverage; the checker's
            // stale_backup_read invariant audits exactly this claim.
            self.stats.borrow_mut().replica_reads += 1;
            self.trace(obskit::TraceEvent::ReadServed {
                replica: self.cfg.addr.node.0 as u64,
                watermark: wm.as_nanos(),
                ts_begin: at.as_nanos(),
            });
        }
        resp.reply(TxnResponse::FromReplica {
            reply: Box::new(inner),
            watermark: wm,
            depth,
        });
    }

    /// One coalesced envelope: client coordination traffic (prepares,
    /// outcomes, watermarks) or a primary's replication batch. The
    /// envelope's deadline is checked once; each costed item (prepares)
    /// then admits individually, so an over-full envelope sheds only the
    /// items that do not fit — its permit lives exactly as long as the
    /// item's processing, like the unbatched path. Control items (outcomes,
    /// watermarks, replication records) bypass admission entirely: refusing
    /// them only amplifies recovery. Items run concurrently; replies keep
    /// item order.
    async fn handle_batch(&self, items: Vec<TxnRequest>, from: Addr, resp: Responder) {
        let now = self.handle.now();
        let deadline_shed = (items
            .iter()
            .any(|i| matches!(i, TxnRequest::Prepare { .. }))
            && resp.deadline().expired(now))
        .then(|| self.admission.shed_deadline(now.as_nanos()));
        let mut joins = Vec::with_capacity(items.len());
        for item in items {
            let me = self.clone();
            // Admit in the dispatch loop (deterministic item order), move
            // the permit into the item's task so it releases on completion.
            let admit: Result<Option<loadkit::Permit>, loadkit::Shed> = match &item {
                TxnRequest::Prepare { .. } => match &deadline_shed {
                    Some(s) => Err(*s),
                    None => self
                        .admission
                        .try_admit(now.as_nanos(), COST_PREPARE)
                        .map(Some),
                },
                _ => Ok(None),
            };
            joins.push(self.handle.spawn_on(self.cfg.addr.node, async move {
                match item {
                    TxnRequest::Prepare {
                        txid,
                        ts_commit,
                        reads,
                        writes,
                        participants,
                        epoch,
                    } => match admit {
                        Err(s) => TxnResponse::Shed(s),
                        // A silent duplicate-in-flight prepare has no
                        // responder to drop here; NotReady classifies the
                        // item as unreachable at the coordinator, exactly
                        // like the single-RPC path's silence-then-timeout.
                        Ok(_permit) => me
                            .do_prepare(txid, ts_commit, reads, writes, participants, epoch)
                            .await
                            .unwrap_or(TxnResponse::NotReady),
                    },
                    // Outcome delivery is fire-and-forget on the wire (the
                    // decision is already safe at the coordinator; CTP and
                    // recovery cover a lost apply), so ack immediately and
                    // run the apply in its own task: a decision's flash
                    // write must not hold every vote in this envelope
                    // hostage. Visibility order is preserved — the apply
                    // installs its versions before first yielding, and its
                    // task is queued ahead of any later-arriving read.
                    TxnRequest::Outcome { txid, commit } => {
                        let me2 = me.clone();
                        me.handle.spawn_on(me.cfg.addr.node, async move {
                            me2.apply_outcome(txid, commit).await;
                        });
                        TxnResponse::Ack
                    }
                    TxnRequest::Watermark { client, ts } => {
                        me.merge_watermark(client, ts);
                        TxnResponse::Ack
                    }
                    TxnRequest::FloorReport { client, ts } => {
                        me.merge_floor(client, ts);
                        TxnResponse::Ack
                    }
                    // Floor acceptance is synchronous, so by the time this
                    // envelope is acked the watermark is already raised;
                    // same-envelope outcomes run as detached tasks, but
                    // until they decide, their records stay Prepared and
                    // poison reads via the piggybacked flag.
                    TxnRequest::AppliedFloor { seq, ts } => {
                        me.accept_floor(seq, ts, from);
                        TxnResponse::Ack
                    }
                    TxnRequest::FloorSync => TxnResponse::Ack,
                    TxnRequest::ReplPrepare(record) => {
                        me.backup_install_prepare(record).await;
                        TxnResponse::Ack
                    }
                    TxnRequest::ReplOutcome { txid, commit } => {
                        let me2 = me.clone();
                        me.handle.spawn_on(me.cfg.addr.node, async move {
                            me2.backup_apply_outcome(txid, commit).await;
                        });
                        TxnResponse::Ack
                    }
                    // Bulk-copy envelopes from the rebalance engine ride
                    // the batch plane; stamps make application order-free.
                    TxnRequest::MigrateRecords { records } => {
                        let _ = me.backend.apply_batch_unordered(records).await;
                        TxnResponse::Ack
                    }
                    other => panic!("unbatchable milana request in batch envelope: {other:?}"),
                }
            }));
        }
        let mut out = Vec::with_capacity(joins.len());
        for j in joins {
            out.push(j.await);
        }
        resp.reply_batch(out);
    }

    /// Backup side of a replicated prepare record: install it and settle
    /// any outcome that raced ahead of it.
    async fn backup_install_prepare(&self, record: TxnRecord) {
        let txid = record.txid;
        self.table.borrow_mut().install(record);
        let pending = self.state.borrow_mut().pending_outcomes.remove(&txid);
        if let Some(commit) = pending {
            self.backup_apply_outcome(txid, commit).await;
        }
    }

    async fn handle_get(&self, key: Key, at: Timestamp, client: ClientId, resp: Responder) {
        {
            let st = self.state.borrow();
            if !st.serving || !st.is_primary {
                resp.reply(TxnResponse::NotReady);
                return;
            }
        }
        {
            // Forwarding stub after a cutover: the flipped map routes this
            // key elsewhere, so send the client back to the master instead
            // of serving a frozen (soon to be GC'd) copy.
            let map = self.map.borrow();
            if self.moved_away(&map, std::iter::once(&key)) {
                resp.reply(TxnResponse::Moved { epoch: map.epoch() });
                return;
            }
        }
        if !self.lease_valid_for(at) {
            resp.reply(TxnResponse::NotReady);
            return;
        }
        // Clock-health ceiling on the read path: noting a read at `at`
        // promises that no write below `at` commits on this key, and the
        // prepare fence refuses any `ts_commit` more than `max_future_ns`
        // past this server's clock — so a read beyond that ceiling would
        // extract a promise honest writers are then held to indefinitely
        // (a broken client could poison hot keys by merely *reading* them
        // with a far-future ts_begin). Refuse it instead; the fence on the
        // prepare path guarantees nothing commits above the ceiling, so
        // every admitted read's promise stays enforceable. Breaches feed
        // the same per-client fence state as suspect prepares.
        if let Some(health) = &self.clock_health {
            let arrival_ns = self.handle.now().as_nanos();
            let verdict = health
                .borrow_mut()
                .observe_read(client, at.as_nanos(), arrival_ns);
            self.stats.borrow_mut().clock_fences = health.borrow().fence_count();
            let refused = match verdict {
                clockkit::ClockVerdict::Ok => None,
                clockkit::ClockVerdict::Suspect {
                    residual_ns,
                    epsilon_ns,
                } => Some((residual_ns, epsilon_ns, false)),
                clockkit::ClockVerdict::Fenced => Some((
                    at.as_nanos() as i64 - arrival_ns as i64,
                    health.borrow().epsilon_ns(client),
                    true,
                )),
            };
            if let Some((residual_ns, epsilon_ns, fenced)) = refused {
                self.trace(obskit::TraceEvent::ClockFence {
                    client: client.0 as u64,
                    residual_ns,
                    epsilon_ns,
                    fenced,
                });
                if !self.cfg.tuning.skip_uncertainty.get() {
                    self.stats.borrow_mut().clock_suspects += 1;
                    resp.reply(TxnResponse::ClockSuspect);
                    return;
                }
            }
        }
        let prepared = self.table.borrow_mut().note_read(&key, at);
        let r = match self.backend.get_at(&key, at).await {
            Ok(vv) => {
                self.stats.borrow_mut().gets += 1;
                TxnResponse::Value {
                    version: vv.version,
                    value: vv.value,
                    prepared,
                }
            }
            Err(StoreError::NotFound) => TxnResponse::NotFound,
            Err(StoreError::SnapshotUnavailable(v)) => TxnResponse::SnapshotUnavailable(v),
            Err(_) => TxnResponse::Capacity,
        };
        resp.reply(r);
    }

    /// Validates and durably prepares one transaction, returning the vote.
    /// `None` means *stay silent* — a duplicate of a prepare whose
    /// replication is still in flight (at-least-once delivery): the
    /// original handler answers once the quorum settles, and answering
    /// early from the table would leak a vote for an un-durable prepare.
    async fn do_prepare(
        &self,
        txid: TxnId,
        ts_commit: Timestamp,
        reads: Rc<[(Key, Version)]>,
        writes: Rc<[(Key, Value)]>,
        participants: Rc<[ShardId]>,
        epoch: u64,
    ) -> Option<TxnResponse> {
        {
            let st = self.state.borrow();
            if !st.serving || !st.is_primary {
                return Some(TxnResponse::NotReady);
            }
        }
        if self.state.borrow().replicating.contains(&txid) {
            return None;
        }
        // Retransmitted prepare: answer from the table.
        if let Some(status) = self.table.borrow().status(txid) {
            return Some(TxnResponse::Vote {
                ok: status != TxnStatus::Aborted,
            });
        }
        // Rebalance epoch fence (definite no-vote, nothing installed):
        // refuse prepares touching keys this primary no longer owns
        // (post-cutover, stale client map), keys that are mid-migration
        // once fenced (so the undecided moving set can drain), or
        // mid-migration keys routed under a map epoch older than ours —
        // the client's view predates the `Migrating` marker. The client
        // refetches the map and retries under the new epoch. (The carried
        // epoch may legitimately be *newer* than the shared map during a
        // failover's master/shared-map install skew; that is not fenced.)
        {
            let st = self.state.borrow();
            let map = self.map.borrow();
            let keys = || {
                reads
                    .iter()
                    .map(|(k, _)| k)
                    .chain(writes.iter().map(|(k, _)| k))
            };
            let fenced_moving = matches!(&st.migration, Some(m) if m.fenced)
                && keys().any(|k| map.key_is_moving(k));
            let stale_routed = epoch < map.epoch() && keys().any(|k| map.key_is_moving(k));
            if fenced_moving || stale_routed || self.moved_away(&map, keys()) {
                self.cfg
                    .tuning
                    .obs
                    .registry
                    .counter("stale_epoch_prepares")
                    .inc();
                return Some(TxnResponse::StaleEpoch { epoch: map.epoch() });
            }
        }
        // Floor fence (readkit): a stamp at or below the certified write
        // floor can only be a straggler — a prepare delayed in the network
        // past its client's later floor reports (the client caps reports
        // below every unacked commit, so a live commit never trips this).
        // Installing it would mint a version below an `AppliedFloor`
        // already streamed to backups, silently invalidating snapshot
        // reads they served. Definite no-vote, nothing installed.
        {
            let floor = self.state.borrow().floors.watermark();
            if floor < Timestamp::MAX && ts_commit <= floor {
                self.stats.borrow_mut().prepares_aborted += 1;
                self.trace(obskit::TraceEvent::PrepareVote {
                    shard: self.cfg.shard.0 as u64,
                    ok: false,
                });
                return Some(TxnResponse::Vote { ok: false });
            }
        }
        // Clock-health fence (clockkit): judge the client-minted `ts_commit`
        // against this server's own arrival clock before spending
        // validation work on it. A residual outside the client's
        // uncertainty window ε is a definite no-vote (nothing validated or
        // installed); a persistently suspect client is fenced until its
        // residuals return to the window. The `skip_uncertainty` fraud hook
        // keeps the estimates updating but lets suspect prepares through,
        // so the history checker's clock-bound invariant can prove it
        // notices.
        if let Some(health) = &self.clock_health {
            let arrival_ns = self.handle.now().as_nanos();
            let raw_residual = ts_commit.0 as i64 - arrival_ns as i64;
            let verdict = health
                .borrow_mut()
                .observe(txid.client, ts_commit.0, arrival_ns);
            self.stats.borrow_mut().clock_fences = health.borrow().fence_count();
            let refused = match verdict {
                clockkit::ClockVerdict::Ok => None,
                clockkit::ClockVerdict::Suspect {
                    residual_ns,
                    epsilon_ns,
                } => Some((residual_ns, epsilon_ns, false)),
                clockkit::ClockVerdict::Fenced => {
                    Some((raw_residual, health.borrow().epsilon_ns(txid.client), true))
                }
            };
            if let Some((residual_ns, epsilon_ns, fenced)) = refused {
                self.trace(obskit::TraceEvent::ClockFence {
                    client: txid.client.0 as u64,
                    residual_ns,
                    epsilon_ns,
                    fenced,
                });
                if !self.cfg.tuning.skip_uncertainty.get() {
                    self.stats.borrow_mut().clock_suspects += 1;
                    return Some(TxnResponse::ClockSuspect);
                }
            }
        }
        // The chaos harness can disable read validation to seed a known
        // serializability bug (lost updates slip through); write-conflict
        // checks stay on so the table's exclusivity invariants hold.
        let checked_reads: &[(Key, Version)] = if self.cfg.tuning.skip_validation.get() {
            &[]
        } else {
            &reads
        };
        let verdict = {
            let mut write_keys = self.scratch_write_keys.borrow_mut();
            write_keys.clear();
            write_keys.extend(writes.iter().map(|(k, _)| k.clone()));
            self.table
                .borrow()
                .validate(checked_reads, &write_keys, ts_commit, |k| {
                    self.latest_committed(k)
                })
        };
        if !verdict.is_success() {
            self.stats.borrow_mut().prepares_aborted += 1;
            self.trace(obskit::TraceEvent::PrepareVote {
                shard: self.cfg.shard.0 as u64,
                ok: false,
            });
            return Some(TxnResponse::Vote { ok: false });
        }
        let record = TxnRecord {
            txid,
            ts_commit,
            writes,
            participants,
            status: TxnStatus::Prepared,
        };
        self.table.borrow_mut().prepare(record.clone());
        self.state.borrow_mut().replicating.insert(txid);
        // Replicate the prepare record through the group-commit batcher;
        // any f of 2f backups suffice, in any order relative to other
        // records (§3.2, Figure 5). The whole batch acks together, so the
        // record's coverage is at least the batch quorum.
        let ok = self
            .repl_batch
            .submit(TxnRequest::ReplPrepare(record))
            .await
            .unwrap_or(false);
        self.state.borrow_mut().replicating.remove(&txid);
        if !ok {
            // Could not make the prepare durable: release and vote abort.
            self.table.borrow_mut().decide(txid, false);
            self.stats.borrow_mut().prepares_aborted += 1;
            self.trace(obskit::TraceEvent::PrepareVote {
                shard: self.cfg.shard.0 as u64,
                ok: false,
            });
            return Some(TxnResponse::Vote { ok: false });
        }
        self.stats.borrow_mut().prepares_ok += 1;
        self.trace(obskit::TraceEvent::PrepareVote {
            shard: self.cfg.shard.0 as u64,
            ok: true,
        });
        Some(TxnResponse::Vote { ok: true })
    }

    /// Applies a coordinator decision on the primary: finalize the table
    /// entry, apply writes on commit, and stream the outcome to backups.
    async fn apply_outcome(&self, txid: TxnId, commit: bool) {
        let record = {
            let mut table = self.table.borrow_mut();
            match table.status(txid) {
                Some(TxnStatus::Prepared) => table.decide(txid, commit),
                Some(_) => None, // duplicate decision
                None => {
                    // Decision for a transaction we never prepared (e.g. CTP
                    // abort): remember it as a tombstone for queries.
                    table.install(TxnRecord {
                        txid,
                        ts_commit: Timestamp::ZERO,
                        writes: Vec::new().into(),
                        participants: Vec::new().into(),
                        status: if commit {
                            TxnStatus::Committed
                        } else {
                            TxnStatus::Aborted
                        },
                    });
                    None
                }
            }
        };
        let Some(record) = record else { return };
        if commit {
            let items: Vec<(Key, Value, Version)> = record
                .writes
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.clone(),
                        Version::new(record.ts_commit, txid.client),
                    )
                })
                .collect();
            // Dual-apply during a migration: committed writes on moving
            // keys are forwarded to every destination replica as
            // version-stamped records. Casts may be lost under faults —
            // the engine's final acked catch-up sweep re-copies anything
            // missing, so this only keeps the cutover delta small.
            let dual = {
                let st = self.state.borrow();
                st.migration.as_ref().map(|m| m.dest.clone())
            };
            if let Some(dest) = dual {
                let moving: Vec<(Key, Value, Version)> = {
                    let map = self.map.borrow();
                    items
                        .iter()
                        .filter(|(k, _, _)| map.key_is_moving(k))
                        .cloned()
                        .collect()
                };
                if !moving.is_empty() {
                    self.cfg
                        .tuning
                        .obs
                        .registry
                        .counter("migration_dual_applies")
                        .add(moving.len() as u64);
                    for &d in &dest {
                        self.rpc.cast(
                            d,
                            TxnRequest::MigrateRecords {
                                records: moving.clone(),
                            },
                        );
                    }
                }
            }
            let _ = self.backend.apply_batch_unordered(items).await;
            self.table.borrow_mut().mark_applied(txid);
            self.stats.borrow_mut().commits += 1;
        } else {
            self.stats.borrow_mut().aborts += 1;
        }
        // Outcome records ride the same group-commit envelope as prepares;
        // best-effort like the unbatched fan-out was (CTP and recovery
        // handle any backup that misses it), so nothing waits on the ack.
        self.repl_batch
            .submit_nowait(TxnRequest::ReplOutcome { txid, commit });
    }

    /// Applies an outcome on a backup: finalize the record if present
    /// (applying committed writes to local storage), else hold the decision
    /// until the prepare record arrives.
    async fn backup_apply_outcome(&self, txid: TxnId, commit: bool) {
        let record = {
            let mut table = self.table.borrow_mut();
            match table.status(txid) {
                Some(TxnStatus::Prepared) => table.decide(txid, commit),
                Some(_) => None,
                None => {
                    self.state
                        .borrow_mut()
                        .pending_outcomes
                        .insert(txid, commit);
                    None
                }
            }
        };
        let Some(record) = record else { return };
        if commit {
            let items: Vec<(Key, Value, Version)> = record
                .writes
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.clone(),
                        Version::new(record.ts_commit, txid.client),
                    )
                })
                .collect();
            let _ = self.backend.apply_batch_unordered(items).await;
            self.table.borrow_mut().mark_applied(txid);
        }
    }

    /// Cooperative Termination Protocol (§4.5): resolve prepared
    /// transactions whose coordinator went silent. Runs only on the
    /// designated backup coordinator — the primary of the transaction's
    /// first participant shard.
    async fn ctp_scan(&self) {
        {
            let st = self.state.borrow();
            if !st.is_primary || !st.serving {
                return;
            }
        }
        let threshold = Timestamp::from_sim(self.handle.now()).before(self.cfg.tuning.ctp_after);
        let stuck = self.table.borrow().stuck_prepared(threshold);
        for record in stuck {
            if record.participants.first() != Some(&self.cfg.shard) {
                continue; // some other primary is the designated coordinator
            }
            let Some(decision) = self.resolve_by_query(&record).await else {
                continue; // a participant is unreachable; retry next scan
            };
            self.stats.borrow_mut().ctp_resolutions += 1;
            self.apply_outcome(record.txid, decision).await;
            // Notify the other participants.
            let map = self.map.borrow().clone();
            for &shard in record.participants.iter() {
                if shard == self.cfg.shard {
                    continue;
                }
                let primary = map.group(shard).primary;
                self.rpc.cast(
                    primary,
                    TxnRequest::Outcome {
                        txid: record.txid,
                        commit: decision,
                    },
                );
            }
        }
    }

    /// Queries the other participants of a prepared transaction and decides
    /// its fate per the CTP rules (§4.5): any commit → commit; any abort or
    /// missing prepare → abort; all prepared → commit (unanimous SUCCESS
    /// means the coordinator's only possible decision was commit). Returns
    /// `None` when a participant is unreachable and no definite answer was
    /// seen — the transaction stays blocked, as 2PC requires.
    async fn resolve_by_query(&self, record: &TxnRecord) -> Option<bool> {
        for &shard in record.participants.iter() {
            if shard == self.cfg.shard {
                continue;
            }
            let primary = self.map.borrow().group(shard).primary;
            let status = self
                .rpc
                .call::<TxnRequest, TxnResponse>(
                    primary,
                    TxnRequest::QueryTxn { txid: record.txid },
                    self.cfg.tuning.repl_timeout,
                )
                .await;
            match status {
                Ok(TxnResponse::Status(TxnQueryStatus::Committed)) => return Some(true),
                Ok(TxnResponse::Status(TxnQueryStatus::Aborted)) => return Some(false),
                Ok(TxnResponse::Status(TxnQueryStatus::Prepared)) => {}
                Ok(TxnResponse::Status(TxnQueryStatus::Unknown)) => return Some(false),
                _ => return None, // unreachable participant: stay blocked
            }
        }
        Some(true)
    }

    /// §4.5 failover: called on a backup when the master promotes it.
    async fn recover_as_primary(&self, backups: Vec<Addr>) {
        {
            let mut st = self.state.borrow_mut();
            st.is_primary = true;
            st.serving = false;
            st.backups = backups.clone();
            // Start a fresh floor stream; the `InstallLog` below (step 5)
            // re-baselines every backup to expect it from seq 0.
            st.floor_seq = 0;
        }
        // 1. Merge transaction logs from a majority of replicas (our own
        //    table already holds everything replicated to us).
        for &b in &backups {
            if let Ok(TxnResponse::Log { records }) = self
                .rpc
                .call::<TxnRequest, TxnResponse>(
                    b,
                    TxnRequest::RequestLog,
                    self.cfg.tuning.repl_timeout,
                )
                .await
            {
                let mut table = self.table.borrow_mut();
                for r in records {
                    table.install(r);
                }
            }
        }
        // 2. Resolve prepared transactions (Algorithm 2).
        let prepared: Vec<TxnRecord> = self
            .table
            .borrow()
            .all_records()
            .into_iter()
            .filter(|r| r.status == TxnStatus::Prepared)
            .collect();
        for record in prepared {
            let commit = if *record.participants == [self.cfg.shard] {
                // Single-shard: a prepared single-participant transaction
                // would have been committed by the coordinator.
                Some(true)
            } else {
                self.resolve_by_query(&record).await
            };
            // Unresolvable transactions stay prepared (2PC blocking); a
            // later CTP scan retries them.
            if let Some(commit) = commit {
                let mut table = self.table.borrow_mut();
                table.decide(record.txid, commit);
            }
        }
        // 3. Apply committed writes our backend does not yet hold
        //    (idempotent). Records applied before the failover are skipped
        //    via the table's applied set, so this is proportional to the
        //    merge delta, not to the whole committed history.
        let committed: Vec<TxnRecord> = {
            let table = self.table.borrow();
            table
                .all_records()
                .into_iter()
                .filter(|r| r.status == TxnStatus::Committed && !table.is_applied(r.txid))
                .collect()
        };
        for r in committed {
            let items: Vec<(Key, Value, Version)> = r
                .writes
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.clone(),
                        Version::new(r.ts_commit, r.txid.client),
                    )
                })
                .collect();
            let _ = self.backend.apply_batch_unordered(items).await;
            self.table.borrow_mut().mark_applied(r.txid);
        }
        // 4. Rebuild volatile key metadata from the merged table.
        self.table.borrow_mut().rebuild_key_meta();
        // 5. Push the merged table to the backups.
        let records = self.table.borrow().all_records();
        let need = backups.len() / 2;
        let _ = replicate_traced::<TxnRequest, TxnResponse>(
            &self.handle,
            &self.rpc,
            &backups,
            TxnRequest::InstallLog { records },
            need,
            self.cfg.tuning.repl_timeout * 4,
            |r| matches!(r, TxnResponse::Ack),
            &self.cfg.tuning.obs.tracer,
            self.repl_seq.replace(self.repl_seq.get() + 1),
        )
        .await;
        // 6. Wait out the old primary's read lease: ts_latestRead is gone,
        //    and serving reads before the old lease expires could break
        //    serializability for already-committed read-only transactions.
        if self.cfg.tuning.lease.is_some() {
            let mut max_granted = self.state.borrow().max_granted;
            for &b in &backups {
                if let Ok(TxnResponse::LeaseInfo { max_granted: g }) = self
                    .rpc
                    .call::<TxnRequest, TxnResponse>(
                        b,
                        TxnRequest::LeaseQuery,
                        self.cfg.tuning.repl_timeout,
                    )
                    .await
                {
                    max_granted = max_granted.max(g);
                }
            }
            let wait_until = max_granted + Duration::from_micros(1);
            if wait_until > self.handle.now() {
                self.handle.sleep_until(wait_until).await;
            }
        }
        // 7. Open for business.
        self.state.borrow_mut().serving = true;
        self.spawn_primary_tasks();
    }

    /// Cold-restart recovery driver (spawned when `cfg.cold_start`): mount
    /// the flash backend, rehydrate the write-floor promises from the
    /// durable floor record, anti-entropy catch-up from the current
    /// primary, then open for business. The server answers `NotReady`
    /// throughout; in particular the fresh table's applied watermark stays
    /// at zero — the mounted durable floor is a *promise* about client
    /// clocks, never a completeness claim about local chains, so backup
    /// snapshot reads resume only once the live floor stream re-promises
    /// coverage after the catch-up splice.
    async fn cold_start(&self) {
        let reg = &self.cfg.tuning.obs.registry;
        let node = self.cfg.addr.node.0 as u64;
        let shard = self.cfg.shard.0 as u64;
        self.trace(obskit::TraceEvent::RecoveryStep {
            node,
            shard,
            phase: obskit::RecoveryPhase::MountStart,
            detail: 0,
        });
        reg.counter("mount_scans").inc();
        let report = self.backend.mount().await;
        reg.counter("torn_pages").add(report.torn_pages);
        self.trace(obskit::TraceEvent::RecoveryStep {
            node,
            shard,
            phase: obskit::RecoveryPhase::MountDone,
            detail: report.torn_pages,
        });
        // The durable floor was only stamped once every client had
        // promised no future prepare at or below it; client clocks are
        // monotone, so the promise holds across the power failure. Without
        // this, a later promotion of this replica would run its floor
        // fence against an empty tracker and could accept a straggler
        // prepare below an `AppliedFloor` other backups already served
        // reads against.
        if report.floor > Timestamp::ZERO {
            self.state.borrow_mut().floors.rehydrate(report.floor);
        }
        if self.cfg.tuning.skip_durability.get() {
            // Fault-injection hook (`--inject durability-skip`): trust the
            // mounted state as-is — no anti-entropy, the stale durable
            // floor is adopted as the applied watermark, and the replica
            // splices itself blindly into the live floor stream (see
            // `accept_floor`) as if the gap never happened. Commits acked
            // while this replica was down are silently missing; the
            // campaign checkers must catch the fraud.
            if report.floor > Timestamp::ZERO {
                self.table
                    .borrow_mut()
                    .advance_applied_watermark(report.floor);
            }
            let primary = self
                .map
                .borrow()
                .group_opt(self.cfg.shard)
                .map(|g| g.primary);
            if let Some(p) = primary {
                self.state.borrow_mut().floor_primary = Some(p.node);
            }
            let serving = {
                let mut st = self.state.borrow_mut();
                if !st.is_primary {
                    st.serving = true;
                }
                st.serving
            };
            if serving {
                self.trace(obskit::TraceEvent::RecoveryStep {
                    node,
                    shard,
                    phase: obskit::RecoveryPhase::Serving,
                    detail: report.floor.as_nanos(),
                });
            }
            return;
        }
        self.catch_up().await;
        let floor = {
            let mut st = self.state.borrow_mut();
            if st.is_primary {
                // Promoted mid-recovery: `recover_as_primary` merged the
                // logs majority-wide (superseding this sweep) and owns the
                // `serving` flip.
                return;
            }
            st.serving = true;
            st.floors.watermark()
        };
        self.trace(obskit::TraceEvent::RecoveryStep {
            node,
            shard,
            phase: obskit::RecoveryPhase::Serving,
            detail: if floor == Timestamp::MAX {
                0
            } else {
                floor.as_nanos()
            },
        });
    }

    /// Anti-entropy catch-up: a cursored sweep of the current primary's
    /// transaction table, installing every record and applying committed
    /// writes the mounted storage is missing (idempotent — the backend
    /// rejects duplicate versions). Commits decided *during* the sweep
    /// arrive through the live replication stream, which this replica has
    /// been receiving since its node revived; the final page's `floor_seq`
    /// splices the floor stream so the applied watermark resumes with the
    /// next contiguous envelope. Deliberately conservative: the fetched
    /// floor itself never advances the applied watermark, because
    /// envelopes below the splice point may still be in flight with
    /// outcomes that floor claims to cover.
    async fn catch_up(&self) {
        let keys_ctr = self.cfg.tuning.obs.registry.counter("catchup_keys");
        let node = self.cfg.addr.node.0 as u64;
        let shard = self.cfg.shard.0 as u64;
        let limit = self.cfg.tuning.catchup_batch.max(1) as u64;
        let mut cursor: Option<TxnId> = None;
        let mut fetched = 0u64;
        loop {
            if self.state.borrow().is_primary {
                return;
            }
            let primary = self
                .map
                .borrow()
                .group_opt(self.cfg.shard)
                .map(|g| g.primary);
            let primary = match primary {
                Some(p) if p != self.cfg.addr && !self.handle.is_dead(p.node) => p,
                // No reachable primary right now (mid-failover); wait for
                // the map to settle and retry.
                _ => {
                    self.handle.sleep(self.cfg.tuning.repl_timeout).await;
                    continue;
                }
            };
            match self
                .rpc
                .call::<TxnRequest, TxnResponse>(
                    primary,
                    TxnRequest::CatchUpFetch { cursor, limit },
                    self.cfg.tuning.repl_timeout * 4,
                )
                .await
            {
                Ok(TxnResponse::CatchUpRecords {
                    records,
                    next,
                    floor_seq,
                    floor,
                }) => {
                    for r in records {
                        let applied = self.catchup_install(r).await;
                        fetched += applied;
                        keys_ctr.add(applied);
                    }
                    self.trace(obskit::TraceEvent::RecoveryStep {
                        node,
                        shard,
                        phase: obskit::RecoveryPhase::CatchUp,
                        detail: fetched,
                    });
                    match next {
                        Some(c) => cursor = Some(c),
                        None => {
                            {
                                let mut st = self.state.borrow_mut();
                                if st.is_primary {
                                    return;
                                }
                                // Splice into the live floor stream. Keep a
                                // further-along position if this stream's
                                // envelopes already advanced it (an
                                // `InstallLog` may have re-baselined us
                                // mid-sweep).
                                let same = st.floor_primary == Some(primary.node);
                                if !(same && st.floor_expected.is_some_and(|e| e >= floor_seq)) {
                                    // Resume after floors that streamed in
                                    // mid-sweep (their data arrived live;
                                    // only the floor metadata was dropped
                                    // while no stream was trusted) — but
                                    // only when the run reaches back to the
                                    // sampled position; a disjoint run
                                    // means envelopes were really lost.
                                    let resume = match st.floor_runs.get(&primary.node) {
                                        Some(&(start, next)) if start <= floor_seq => {
                                            next.max(floor_seq)
                                        }
                                        _ => floor_seq,
                                    };
                                    st.floor_expected = Some(resume);
                                }
                                st.floor_primary = Some(primary.node);
                                st.floor_runs.clear();
                                if floor > Timestamp::ZERO {
                                    st.floors.rehydrate(floor);
                                }
                            }
                            if floor > Timestamp::ZERO {
                                self.backend.note_floor(floor);
                            }
                            return;
                        }
                    }
                }
                // Primary mid-promotion (NotReady), deposed, or
                // unreachable: re-resolve from the shared map and retry.
                Ok(_) | Err(_) => {
                    self.handle.sleep(self.cfg.tuning.repl_timeout).await;
                }
            }
        }
    }

    /// Installs one swept record, settling any outcome that raced ahead of
    /// it and applying committed writes not yet in the mounted backend.
    /// Returns the number of keys applied.
    async fn catchup_install(&self, r: TxnRecord) -> u64 {
        if r.status == TxnStatus::Prepared {
            self.backup_install_prepare(r).await;
            return 0;
        }
        let apply = r.status == TxnStatus::Committed && !self.table.borrow().is_applied(r.txid);
        let txid = r.txid;
        let items: Vec<(Key, Value, Version)> = r
            .writes
            .iter()
            .map(|(k, v)| (k.clone(), v.clone(), Version::new(r.ts_commit, txid.client)))
            .collect();
        self.table.borrow_mut().install(r);
        if !apply {
            return 0;
        }
        let n = items.len() as u64;
        let _ = self.backend.apply_batch_unordered(items).await;
        self.table.borrow_mut().mark_applied(txid);
        n
    }
}
