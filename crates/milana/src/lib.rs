//! # milana — lightweight transactions on precision time
//!
//! MILANA (§4 of *Enabling Lightweight Transactions with Precision Time*,
//! ASPLOS'17) layers serializable ACID transactions over the SEMEL
//! multi-version store using client-side optimistic concurrency control:
//!
//! - each transaction runs on one client, which assigns its `ts_begin` /
//!   `ts_commit` from the local PTP-disciplined clock and coordinates 2PC;
//! - reads are **snapshot reads at `ts_begin`** against SEMEL's version
//!   chains, so readers never block writers and vice versa;
//! - write validation (Algorithm 1) runs **only on each shard's primary**,
//!   not on all replicas — backups just store records for fault tolerance;
//! - **read-only transactions commit at the client** with zero validation
//!   round trips (§4.3), powered by the prepared-version flag piggybacked on
//!   every get and the primary's `ts_latestRead` guard;
//! - prepare/outcome records replicate in any order (§3.2 / Figure 5);
//!   failover merges replica logs (Algorithm 2), resolves in-doubt
//!   transactions via participant queries / cooperative termination, and
//!   waits out read leases before serving again (§4.5).
//!
//! The [`centiman`] module implements the watermark-based local-validation
//! baseline the paper compares against in §5.3 (Figure 9).
//!
//! # Examples
//!
//! ```
//! use milana::cluster::{MilanaCluster, MilanaClusterConfig};
//! use flashsim::{value, Key};
//! use simkit::Sim;
//!
//! let mut sim = Sim::new(7);
//! let handle = sim.handle();
//! let cluster = MilanaCluster::build(&handle, MilanaClusterConfig {
//!     preload_keys: 10,
//!     ..MilanaClusterConfig::default()
//! });
//! sim.block_on(async move {
//!     let client = &cluster.clients[0];
//!     let mut txn = client.begin_with(milana::TxnOpts::default());
//!     let _ = txn.get(&Key::from(1u64)).await?;
//!     txn.put(Key::from(2u64), value(&b"updated"[..]));
//!     txn.commit().await?;
//!     Ok::<(), milana::msg::TxnError>(())
//! }).unwrap();
//! ```

#![warn(missing_docs)]

pub mod centiman;
pub mod client;
pub mod cluster;
pub mod msg;
pub mod server;
pub mod table;

#[cfg(test)]
mod tests;

pub use client::{
    CommitInfo, MilanaClient, Txn, TxnClient, TxnClientBuilder, TxnClientConfig, TxnMode, TxnOpts,
    ValidationMode,
};
pub use cluster::{MilanaCluster, MilanaClusterConfig};
pub use msg::{AbortReason, PromoteError, TxnError, TxnId, TxnRequest, TxnResponse};
pub use server::{LeaseConfig, ServerTuning, TxnServer, TxnServerConfig};

/// One-stop imports for driving a MILANA cluster: the client handle and
/// its begin/validation options, the cluster harness, the error type, and
/// the clock profile used to configure client clocks — without reaching
/// into simulator internals.
pub mod prelude {
    pub use crate::client::{
        CommitInfo, Txn, TxnClient, TxnClientConfig, TxnMode, TxnOpts, ValidationMode,
    };
    pub use crate::cluster::{MilanaCluster, MilanaClusterConfig};
    pub use crate::msg::{AbortReason, TxnError};
    pub use timesync::{ClockSpec, Discipline};
}
