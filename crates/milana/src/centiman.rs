//! Centiman-style validation baseline (§5.3, Figure 9).
//!
//! Centiman \[Ding et al., SoCC'15\] factors OCC validation out of the
//! storage servers into dedicated **validator** nodes and gives clients a
//! *watermark-gated* local validation rule for read-only transactions: a
//! client may commit a read-only transaction locally only if every version
//! it read is older than the globally disseminated watermark; otherwise it
//! must fall back to a remote validation round trip.
//!
//! The contrast the paper draws (Figure 9): under contention, reads return
//! young versions, the watermark test fails, and Centiman degrades to
//! remote validation — while MILANA's prepared-flag scheme validates *all*
//! read-only transactions locally.
//!
//! Storage is plain SEMEL (reads/writes by version stamp); the validator
//! keeps the latest committed write timestamp per key, truncated below the
//! watermark, and applies writes optimistically at validation time (a
//! globally aborted transaction may leave tentative writes behind, which is
//! conservative — it can only cause extra aborts, never lost conflicts).

use perfkit::FastMap;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use flashsim::{Key, Value};
use semel::client::SemelClient;
use semel::msg::SemelError;
use semel::shard::ShardMap;
use simkit::net::{Addr, NodeId};
use simkit::rpc::{recv_request, RpcClient};
use simkit::SimHandle;
use timesync::{ClientId, Timestamp, Version, WatermarkTracker};

use crate::msg::{AbortReason, TxnError, TxnId};

/// Requests understood by a Centiman validator.
#[derive(Debug, Clone)]
pub enum ValidatorRequest {
    /// Validate a transaction's reads and (optimistically apply) writes.
    Validate {
        /// Transaction id.
        txid: TxnId,
        /// Client-chosen commit timestamp.
        ts_commit: Timestamp,
        /// The latest timestamp at which the reads must still be current:
        /// `ts_commit` for read-write transactions (serializability at the
        /// commit point), `ts_begin` for read-only ones (snapshot reads are
        /// immune to later writes).
        read_horizon: Timestamp,
        /// `(key, version read)` pairs in this validator's shard.
        reads: Vec<(Key, Version)>,
        /// Write-set keys in this validator's shard.
        writes: Vec<Key>,
    },
    /// Client progress report (drives the watermark).
    Progress {
        /// Reporting client.
        client: ClientId,
        /// Latest decided timestamp.
        ts: Timestamp,
    },
}

/// Validator replies. Every reply piggybacks the validator's current
/// watermark so clients keep their local-validation gate fresh.
#[derive(Debug, Clone)]
pub enum ValidatorResponse {
    /// Validation verdict.
    Vote {
        /// True = no conflict.
        ok: bool,
        /// Current watermark at this validator.
        watermark: Timestamp,
    },
    /// Progress acknowledged.
    Ack {
        /// Current watermark at this validator.
        watermark: Timestamp,
    },
}

/// A Centiman validator for one shard. Cloning shares it.
#[derive(Clone)]
pub struct Validator {
    inner: Rc<RefCell<ValidatorInner>>,
}

struct ValidatorInner {
    /// Latest committed (or optimistically applied) write per key.
    writes: FastMap<Key, Timestamp>,
    watermarks: WatermarkTracker,
    handle: SimHandle,
    /// Trace sink for validation verdicts; disabled by default.
    tracer: obskit::Tracer,
    /// Shard id stamped on emitted trace events.
    trace_shard: u64,
}

impl std::fmt::Debug for Validator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Validator")
            .field("tracked_keys", &self.inner.borrow().writes.len())
            .finish()
    }
}

impl Validator {
    /// Spawns a validator service at `addr`.
    pub fn spawn(handle: &SimHandle, addr: Addr, clients: Vec<ClientId>) -> Validator {
        let v = Validator {
            inner: Rc::new(RefCell::new(ValidatorInner {
                writes: FastMap::default(),
                watermarks: WatermarkTracker::new(clients),
                handle: handle.clone(),
                tracer: obskit::Tracer::disabled(),
                trace_shard: 0,
            })),
        };
        let mailbox = handle.bind(addr);
        let h = handle.clone();
        let me = v.clone();
        handle.spawn_on(addr.node, async move {
            while let Some((req, _from, resp)) =
                recv_request::<ValidatorRequest>(&h, &mailbox).await
            {
                let reply = me.handle(req);
                resp.reply(reply);
            }
        });
        v
    }

    /// Attaches a trace sink; each validation verdict emits a
    /// [`obskit::TraceEvent::PrepareVote`] stamped with `shard`.
    pub fn attach_tracer(&self, tracer: &obskit::Tracer, shard: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.tracer = tracer.clone();
        inner.trace_shard = shard;
    }

    fn handle(&self, req: ValidatorRequest) -> ValidatorResponse {
        let mut inner = self.inner.borrow_mut();
        match req {
            ValidatorRequest::Validate {
                txid: _,
                ts_commit,
                read_horizon,
                reads,
                writes,
            } => {
                let mut ok = true;
                for (key, version) in &reads {
                    if let Some(&w) = inner.writes.get(key) {
                        // Conflict iff a write landed in (version, horizon]:
                        // the transaction read a value that was no longer
                        // current at the point where it must serialize.
                        if w > version.ts && w <= read_horizon {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    for key in writes {
                        let e = inner.writes.entry(key).or_insert(Timestamp::ZERO);
                        if ts_commit > *e {
                            *e = ts_commit;
                        }
                    }
                }
                inner.tracer.record(
                    inner.handle.now().as_nanos(),
                    obskit::TraceEvent::PrepareVote {
                        shard: inner.trace_shard,
                        ok,
                    },
                );
                ValidatorResponse::Vote {
                    ok,
                    watermark: inner.watermarks.watermark(),
                }
            }
            ValidatorRequest::Progress { client, ts } => {
                inner.watermarks.update(client, ts);
                let wm = inner.watermarks.watermark();
                // Truncate state below the watermark (Centiman's sliding
                // window): reads of versions older than the watermark are
                // decided by the client, so these entries are dead weight.
                if wm > Timestamp::ZERO {
                    inner.writes.retain(|_, &mut mut_w| mut_w >= wm);
                }
                ValidatorResponse::Ack { watermark: wm }
            }
        }
    }
}

/// Client tuning for the Centiman baseline.
#[derive(Debug, Clone)]
pub struct CentimanConfig {
    /// Per-RPC timeout.
    pub rpc_timeout: Duration,
    /// Disseminate progress after this many decided transactions (the
    /// paper's experiment uses 1,000).
    pub report_every: u64,
    /// Observability sinks (txn-lifecycle trace events).
    pub obs: obskit::Obs,
}

impl Default for CentimanConfig {
    fn default() -> CentimanConfig {
        CentimanConfig {
            rpc_timeout: Duration::from_millis(50),
            report_every: 1000,
            obs: obskit::Obs::new(),
        }
    }
}

/// Per-client Centiman counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CentimanStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions.
    pub aborts: u64,
    /// Read-only transactions decided by the watermark rule (no RPC).
    pub local_validated: u64,
    /// Read-only transactions that had to validate remotely.
    pub remote_validated: u64,
}

/// A Centiman client: SEMEL storage for data, validators for OCC.
#[derive(Clone)]
pub struct CentimanClient {
    handle: SimHandle,
    storage: SemelClient,
    validators: Rc<Vec<Addr>>,
    map: Rc<RefCell<ShardMap>>,
    rpc: RpcClient,
    cfg: Rc<CentimanConfig>,
    watermark: Rc<Cell<Timestamp>>,
    decided: Rc<Cell<u64>>,
    last_decided_ts: Rc<Cell<Timestamp>>,
    seq: Rc<Cell<u64>>,
    stats: Rc<RefCell<CentimanStats>>,
}

impl std::fmt::Debug for CentimanClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CentimanClient")
            .field("id", &self.storage.id())
            .finish()
    }
}

/// Reply port for the Centiman client's validator RPCs.
pub const CENTIMAN_RPC_PORT: u16 = 48;

impl CentimanClient {
    /// Creates a client on `node`. `validators[i]` must be the validator of
    /// shard `i` in `map`.
    pub fn new(
        handle: &SimHandle,
        node: NodeId,
        storage: SemelClient,
        validators: Vec<Addr>,
        map: Rc<RefCell<ShardMap>>,
        cfg: CentimanConfig,
    ) -> CentimanClient {
        CentimanClient {
            handle: handle.clone(),
            storage,
            validators: Rc::new(validators),
            map,
            rpc: RpcClient::new(handle, node, CENTIMAN_RPC_PORT),
            cfg: Rc::new(cfg),
            watermark: Rc::new(Cell::new(Timestamp::ZERO)),
            decided: Rc::new(Cell::new(0)),
            last_decided_ts: Rc::new(Cell::new(Timestamp::ZERO)),
            seq: Rc::new(Cell::new(0)),
            stats: Rc::new(RefCell::new(CentimanStats::default())),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CentimanStats {
        *self.stats.borrow()
    }

    fn trace(&self, ev: obskit::TraceEvent) {
        self.cfg.obs.tracer.record(self.handle.now().as_nanos(), ev);
    }

    /// Begins a transaction.
    pub fn begin(&self) -> CentTxn {
        let ts_begin = self.storage.now();
        self.trace(obskit::TraceEvent::TxnBegin {
            client: self.storage.id().0 as u64,
            ts_begin: ts_begin.0,
        });
        CentTxn {
            c: self.clone(),
            ts_begin,
            read_set: Vec::new(),
            writes: Vec::new(),
            write_idx: FastMap::default(),
            cache: FastMap::default(),
            finished: false,
        }
    }

    async fn note_decided(&self, ts: Timestamp) {
        if ts > self.last_decided_ts.get() {
            self.last_decided_ts.set(ts);
        }
        let n = self.decided.get() + 1;
        self.decided.set(n);
        if n.is_multiple_of(self.cfg.report_every) {
            self.disseminate().await;
        }
    }

    /// Sends a progress report to every validator and refreshes the local
    /// watermark estimate (normally triggered every `report_every` decided
    /// transactions; public for tests and warm-up).
    pub async fn disseminate(&self) {
        let ts = self.last_decided_ts.get();
        for &v in self.validators.iter() {
            let r = self
                .rpc
                .call::<ValidatorRequest, ValidatorResponse>(
                    v,
                    ValidatorRequest::Progress {
                        client: self.storage.id(),
                        ts,
                    },
                    self.cfg.rpc_timeout,
                )
                .await;
            if let Ok(ValidatorResponse::Ack { watermark }) = r {
                if watermark > self.watermark.get() {
                    self.watermark.set(watermark);
                }
            }
        }
    }
}

/// One executing Centiman transaction.
#[derive(Debug)]
pub struct CentTxn {
    c: CentimanClient,
    ts_begin: Timestamp,
    read_set: Vec<(Key, Version)>,
    writes: Vec<(Key, Value)>,
    write_idx: FastMap<Key, usize>,
    cache: FastMap<Key, Value>,
    finished: bool,
}

impl CentTxn {
    /// Snapshot read at `ts_begin` (own writes win).
    ///
    /// # Errors
    ///
    /// [`TxnError::KeyNotFound`] / [`TxnError::Timeout`] as in MILANA.
    pub async fn get(&mut self, key: &Key) -> Result<Value, TxnError> {
        if let Some(&i) = self.write_idx.get(key) {
            return Ok(self.writes[i].1.clone());
        }
        if let Some(v) = self.cache.get(key) {
            return Ok(v.clone());
        }
        match self.c.storage.get_at(key.clone(), self.ts_begin).await {
            Ok(vv) => {
                self.c.trace(obskit::TraceEvent::TxnRead {
                    client: self.c.storage.id().0 as u64,
                    key: key.trace_id(),
                    prepared: false,
                    ver_ts: vv.version.ts.0,
                    ver_client: vv.version.client.0 as u64,
                });
                self.read_set.push((key.clone(), vv.version));
                self.cache.insert(key.clone(), vv.value.clone());
                Ok(vv.value)
            }
            Err(SemelError::NotFound) => Err(TxnError::KeyNotFound(key.clone())),
            Err(SemelError::SnapshotUnavailable(_)) => {
                Err(TxnError::Aborted(AbortReason::SnapshotUnavailable))
            }
            Err(_) => Err(TxnError::Timeout),
        }
    }

    /// Buffers a write.
    pub fn put(&mut self, key: Key, value: Value) {
        match self.write_idx.get(&key) {
            Some(&i) => self.writes[i].1 = value,
            None => {
                self.write_idx.insert(key.clone(), self.writes.len());
                self.writes.push((key, value));
            }
        }
    }

    /// Commits via Centiman validation.
    ///
    /// Read-only fast path: if every read version is older than the known
    /// watermark, commit locally; otherwise validate remotely. Read-write
    /// transactions always validate remotely, then push their writes to
    /// storage.
    ///
    /// # Errors
    ///
    /// [`TxnError::Aborted`] on validation conflict.
    pub async fn commit(mut self) -> Result<crate::client::CommitInfo, TxnError> {
        assert!(!self.finished, "commit on finished transaction");
        self.finished = true;
        let read_only = self.writes.is_empty();
        if read_only {
            let wm = self.c.watermark.get();
            let all_old = self.read_set.iter().all(|(_, v)| v.ts < wm);
            let client = self.c.storage.id().0 as u64;
            self.c.trace(obskit::TraceEvent::ValidateLocal {
                client,
                ok: all_old,
            });
            if all_old {
                // Reads below the watermark are immutable history: no
                // in-flight writer can commit under them anymore.
                {
                    let mut st = self.c.stats.borrow_mut();
                    st.local_validated += 1;
                    st.commits += 1;
                }
                self.c.trace(obskit::TraceEvent::Commit {
                    client,
                    ts_commit: self.ts_begin.0,
                    local: true,
                });
                self.c.note_decided(self.ts_begin).await;
                return Ok(crate::client::CommitInfo {
                    ts_commit: None,
                    local: true,
                });
            }
            self.c.stats.borrow_mut().remote_validated += 1;
        }
        let ts_commit = self.c.storage.now();
        let read_horizon = if read_only { self.ts_begin } else { ts_commit };
        let txid = TxnId {
            client: self.c.storage.id(),
            seq: self.c.seq.replace(self.c.seq.get() + 1),
        };
        // Partition by shard and validate at each shard's validator.
        type ShardSets = FastMap<usize, (Vec<(Key, Version)>, Vec<Key>)>;
        let mut by_shard: ShardSets = FastMap::default();
        {
            let map = self.c.map.borrow();
            for (key, version) in &self.read_set {
                let s = map.shard_for(key).0 as usize;
                by_shard
                    .entry(s)
                    .or_default()
                    .0
                    .push((key.clone(), *version));
            }
            for (key, _) in &self.writes {
                let s = map.shard_for(key).0 as usize;
                by_shard.entry(s).or_default().1.push(key.clone());
            }
        }
        let mut ok = true;
        let mut shards_sorted: Vec<usize> = by_shard.keys().copied().collect();
        shards_sorted.sort_unstable();
        self.c.trace(obskit::TraceEvent::ValidateRemote {
            client: self.c.storage.id().0 as u64,
            participants: shards_sorted.len() as u64,
        });
        // Validate at every involved validator in parallel (one round).
        let mut votes = Vec::new();
        for s in shards_sorted {
            let (reads, writes) = by_shard.remove(&s).expect("shard present");
            let rpc = self.c.rpc.clone();
            let to = self.c.validators[s];
            let timeout = self.c.cfg.rpc_timeout;
            votes.push(self.c.handle.spawn(async move {
                rpc.call::<ValidatorRequest, ValidatorResponse>(
                    to,
                    ValidatorRequest::Validate {
                        txid,
                        ts_commit,
                        read_horizon,
                        reads,
                        writes,
                    },
                    timeout,
                )
                .await
            }));
        }
        for v in votes {
            match v.await {
                Ok(ValidatorResponse::Vote {
                    ok: vote,
                    watermark,
                }) => {
                    if watermark > self.c.watermark.get() {
                        self.c.watermark.set(watermark);
                    }
                    ok &= vote;
                }
                _ => ok = false,
            }
        }
        if !ok {
            self.c.stats.borrow_mut().aborts += 1;
            self.c.trace(obskit::TraceEvent::Abort {
                client: self.c.storage.id().0 as u64,
                reason: obskit::AbortClass::Validation,
            });
            self.c.note_decided(ts_commit).await;
            return Err(TxnError::Aborted(AbortReason::Validation));
        }
        // Push writes to storage with the commit stamp, in parallel.
        let version = Version::new(ts_commit, self.c.storage.id());
        let mut puts = Vec::new();
        for (key, value) in self.writes.drain(..) {
            let storage = self.c.storage.clone();
            puts.push(self.c.handle.spawn(async move {
                let _ = storage.put_versioned(key, value, version).await;
            }));
        }
        for p in puts {
            p.await;
        }
        self.c.stats.borrow_mut().commits += 1;
        self.c.trace(obskit::TraceEvent::Commit {
            client: self.c.storage.id().0 as u64,
            ts_commit: ts_commit.0,
            local: false,
        });
        self.c.note_decided(ts_commit).await;
        Ok(crate::client::CommitInfo {
            ts_commit: Some(ts_commit),
            local: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashsim::value;
    use semel::cluster::{ClusterConfig, SemelCluster};
    use simkit::Sim;

    /// Boots SEMEL storage (1 replica per shard, as §5.3 specifies), one
    /// validator per shard, and Centiman clients.
    fn boot(
        sim: &Sim,
        shards: u32,
        clients: u32,
        preload: u64,
    ) -> (SemelCluster, Vec<CentimanClient>) {
        let h = sim.handle();
        let cluster = SemelCluster::build(
            &h,
            ClusterConfig {
                shards,
                replicas: 1,
                clients,
                preload_keys: preload,
                nand: flashsim::NandConfig {
                    blocks: 256,
                    pages_per_block: 8,
                    ..flashsim::NandConfig::default()
                },
                ..ClusterConfig::default()
            },
        );
        let client_ids: Vec<ClientId> = (0..clients).map(ClientId).collect();
        let validators: Vec<Addr> = (0..shards)
            .map(|s| {
                // Validators live on the storage nodes, port 8.
                let node = cluster
                    .map
                    .borrow()
                    .group(semel::shard::ShardId(s))
                    .primary
                    .node;
                let addr = Addr::new(node, 8);
                Validator::spawn(&h, addr, client_ids.clone());
                addr
            })
            .collect();
        let cents = (0..clients)
            .map(|i| {
                CentimanClient::new(
                    &h,
                    simkit::net::NodeId(10_000 + i),
                    cluster.clients[i as usize].clone(),
                    validators.clone(),
                    cluster.map.clone(),
                    CentimanConfig {
                        report_every: 5,
                        ..CentimanConfig::default()
                    },
                )
            })
            .collect();
        (cluster, cents)
    }

    #[test]
    fn read_write_commit_round_trips() {
        let mut sim = Sim::new(41);
        let (_storage, clients) = boot(&sim, 2, 1, 50);
        sim.block_on(async move {
            let c = &clients[0];
            let mut t = c.begin();
            let _ = t.get(&Key::from(1u64)).await.unwrap();
            t.put(Key::from(1u64), value(&b"cent"[..]));
            t.commit().await.unwrap();
            let mut t2 = c.begin();
            assert_eq!(&t2.get(&Key::from(1u64)).await.unwrap()[..], b"cent");
            t2.commit().await.unwrap();
        });
    }

    #[test]
    fn conflicting_writers_one_aborts() {
        let mut sim = Sim::new(42);
        let h = sim.handle();
        let (_storage, clients) = boot(&sim, 1, 2, 50);
        sim.block_on(async move {
            let c0 = clients[0].clone();
            let c1 = clients[1].clone();
            let run = |c: CentimanClient, tag: &'static [u8]| async move {
                let mut t = c.begin();
                let _ = t.get(&Key::from(1u64)).await.unwrap();
                t.put(Key::from(1u64), value(tag));
                t.commit().await
            };
            let j0 = h.spawn(run(c0, b"zero"));
            let j1 = h.spawn(run(c1, b"one"));
            let (r0, r1) = (j0.await, j1.await);
            let commits = [&r0, &r1].iter().filter(|r| r.is_ok()).count();
            assert_eq!(commits, 1, "{r0:?} {r1:?}");
        });
    }

    #[test]
    fn stale_watermark_forces_remote_validation() {
        let mut sim = Sim::new(43);
        let (_storage, clients) = boot(&sim, 1, 1, 50);
        sim.block_on(async move {
            let c = &clients[0];
            // Watermark is ZERO: a read-only transaction cannot pass the
            // local gate (versions have ts >= watermark).
            let mut t = c.begin();
            let _ = t.get(&Key::from(1u64)).await.unwrap();
            t.commit().await.unwrap();
            assert_eq!(c.stats().remote_validated, 1);
            assert_eq!(c.stats().local_validated, 0);
        });
    }

    #[test]
    fn fresh_watermark_enables_local_validation() {
        let mut sim = Sim::new(44);
        let hh = sim.handle();
        let (_storage, clients) = boot(&sim, 1, 1, 50);
        sim.block_on(async move {
            let c = &clients[0];
            // Commit a write, advance time, and disseminate so the
            // watermark rises above the preloaded versions.
            let mut t = c.begin();
            let _ = t.get(&Key::from(2u64)).await.unwrap();
            t.put(Key::from(2u64), value(&b"warm"[..]));
            t.commit().await.unwrap();
            hh.sleep(Duration::from_millis(5)).await;
            c.disseminate().await;
            // Preloaded key 1 (version ts=1) is far below the watermark now.
            let mut t2 = c.begin();
            let _ = t2.get(&Key::from(1u64)).await.unwrap();
            let info = t2.commit().await.unwrap();
            assert!(info.local);
            assert_eq!(c.stats().local_validated, 1);
        });
    }

    #[test]
    fn contended_reads_fail_the_watermark_gate() {
        let mut sim = Sim::new(45);
        let hh = sim.handle();
        let (_storage, clients) = boot(&sim, 1, 2, 50);
        sim.block_on(async move {
            let writer = clients[0].clone();
            let reader = clients[1].clone();
            // Warm the watermark.
            let mut t = writer.begin();
            let _ = t.get(&Key::from(1u64)).await.unwrap();
            t.put(Key::from(1u64), value(&b"w0"[..]));
            t.commit().await.unwrap();
            hh.sleep(Duration::from_millis(5)).await;
            writer.disseminate().await;
            reader.disseminate().await;
            // Writer updates key 1 again — now its version is young.
            let mut t = writer.begin();
            let _ = t.get(&Key::from(1u64)).await.unwrap();
            t.put(Key::from(1u64), value(&b"w1"[..]));
            t.commit().await.unwrap();
            hh.sleep(Duration::from_millis(2)).await;
            // Reader reads the young version: local gate must fail.
            let mut r = reader.begin();
            let _ = r.get(&Key::from(1u64)).await.unwrap();
            r.commit().await.unwrap();
            assert_eq!(reader.stats().remote_validated, 1);
        });
    }
}
