//! The MILANA client library (§4.1): each transaction executes entirely on
//! one client, which assigns its begin/commit timestamps from the local
//! precision clock, buffers writes, caches reads, coordinates two-phase
//! commit — and **commits read-only transactions locally**, with no server
//! round trips at all (§4.3).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use perfkit::FastMap;
use std::rc::Rc;
use std::time::Duration;

use batchkit::{BatchConfig, Batcher};
use flashsim::{Key, Value};
use loadkit::{RetryConfig, RetryPolicy};
use obskit::{Obs, TraceEvent};
use rand::{rngs::StdRng, SeedableRng};
use readkit::{ReadRoute, ReplicaView, VersionCache};
use semel::shard::{ShardId, ShardMap};
use simkit::net::{Addr, NodeId};
use simkit::rpc::{RpcClient, RpcError};
use simkit::{SimHandle, SimTime};
use timesync::{ClientId, ClockSpec, SyncedClock, Timestamp, Version};

use crate::msg::{AbortReason, TxnError, TxnId, TxnRequest, TxnResponse};

/// Where transaction validation runs — the one knob that used to be
/// scattered across `local_validation` booleans and per-harness validator
/// flags. Shared by the client builder, cluster configs, and bench configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMode {
    /// Every transaction — read-only included — validates remotely through
    /// 2PC at the shard primaries. The "w/o LV" configuration of Figure 8.
    Remote,
    /// Read-only transactions validate **client-locally** from the
    /// prepared-version flags piggybacked on reads (§4.3); read-write
    /// transactions still run 2PC. The paper's MILANA default.
    #[default]
    Local,
    /// Validation is delegated to a Centiman-style sharded validator tier
    /// ([`crate::centiman`]). A [`TxnClient`] carrying this mode behaves
    /// like [`ValidationMode::Remote`] (the validator tier lives in the
    /// comparison harness, not behind the MILANA wire protocol); the
    /// variant exists so cluster and bench configs can name all three
    /// designs in one vocabulary.
    Centiman,
}

impl ValidationMode {
    /// Whether read-only transactions may commit client-locally.
    pub fn is_local(self) -> bool {
        matches!(self, ValidationMode::Local)
    }
}

/// Client tuning.
#[derive(Debug, Clone)]
pub struct TxnClientConfig {
    /// Per-RPC timeout.
    pub rpc_timeout: Duration,
    /// Master address for shard-map refresh after repeated failures.
    /// `None` means the client's map is externally maintained.
    pub master: Option<simkit::net::Addr>,
    /// Retries for reads that hit a recovering/leaseless primary.
    pub read_retries: u32,
    /// Where validation runs (§4.3). [`ValidationMode::Remote`] forces
    /// read-only transactions through 2PC, the "w/o LV" configuration of
    /// Figure 8.
    pub validation: ValidationMode,
    /// Watermark broadcast period (§4.4).
    pub watermark_interval: Duration,
    /// Observability: metric registry plus (optionally enabled) structured
    /// trace sink. Defaults to metrics-only.
    pub obs: Obs,
    /// Client-side overload behavior: backoff jitter, the retry budget,
    /// and the per-shard circuit breaker.
    pub retry: RetryConfig,
    /// Coordinator-plane coalescing: Prepares/Outcomes bound for the same
    /// shard primary ride one envelope per flush window, with the client's
    /// watermark piggybacked on envelopes instead of its own RPC tick.
    /// `BatchConfig::unbatched()` reproduces the one-RPC-per-message plane.
    pub batch: BatchConfig,
    /// Replica routing for snapshot reads: non-primary policies send the
    /// read to a backup whose applied watermark covers `ts_begin`, falling
    /// back to the primary on `TooStale`. Default: primary-only.
    pub read_route: ReadRoute,
    /// Capacity (entries) of the client-wide version cache feeding
    /// cached transactions ([`TxnOpts::cached`]); 0 disables it.
    pub cache_entries: usize,
    /// Bounded-staleness snapshots (readkit): [`TxnOpts::snapshot`]
    /// opens its snapshot this far behind the client clock. The applied
    /// floor trails real time by roughly a commit round-trip, so a small
    /// lag makes a read-only transaction backup-eligible from its *first*
    /// read instead of only after the floor catches up mid-transaction.
    /// Zero (the default) reads at `now`. Plain [`TxnClient::begin`]
    /// ignores the knob — lagging a writer only widens its validation
    /// window. Serializability is unaffected either way.
    pub snapshot_lag: Duration,
}

impl Default for TxnClientConfig {
    fn default() -> TxnClientConfig {
        TxnClientConfig {
            rpc_timeout: Duration::from_millis(50),
            master: None,
            read_retries: 8,
            validation: ValidationMode::Local,
            watermark_interval: Duration::from_millis(100),
            obs: Obs::new(),
            retry: RetryConfig::default(),
            batch: BatchConfig::default(),
            read_route: ReadRoute::PrimaryOnly,
            cache_entries: 4096,
            snapshot_lag: Duration::ZERO,
        }
    }
}

/// Per-client transaction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnClientStats {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted (any reason).
    pub aborts: u64,
    /// Read-only transactions decided locally (no validation round trips).
    pub local_validations: u64,
    /// Commit outcomes left unknown (coordinator could not decide).
    pub unknown: u64,
    /// Snapshot reads served by a backup replica (read routing).
    pub replica_reads: u64,
    /// Reads served from the client-wide version cache.
    pub cached_reads: u64,
}

/// How a transaction opens its snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxnMode {
    /// `ts_begin` = the client clock now. The right mode for anything that
    /// might write: lagging a writer only widens its validation window.
    #[default]
    ReadWrite,
    /// **Bounded-staleness snapshot** (§4.6): `ts_begin` opens behind the
    /// clock (the configured or per-transaction lag), so the snapshot is
    /// already below the replicated write floor by the first read and
    /// backup replicas can serve it immediately. Meant for transactions
    /// known to be read-only up front.
    Snapshot,
}

/// Typed options for [`TxnClient::begin_with`] — mode, snapshot lag, and
/// cache participation as fields instead of three near-identical methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxnOpts {
    /// Snapshot placement (see [`TxnMode`]).
    pub mode: TxnMode,
    /// Snapshot lag override for [`TxnMode::Snapshot`]; `None` uses
    /// [`TxnClientConfig::snapshot_lag`]. Ignored in read-write mode.
    pub snapshot_lag: Option<Duration>,
    /// §4.3 cached mode: serve reads speculatively from the client-wide
    /// value cache. A transaction that took a speculative hit loses the
    /// prepared-flag information that powers local validation, so it
    /// validates remotely at commit even when read-only — as the paper
    /// prescribes: "any transaction marked as read-write in advance may
    /// read from its cache, but then must validate remotely."
    pub cached: bool,
}

impl TxnOpts {
    /// Bounded-staleness snapshot at the configured lag.
    pub fn snapshot() -> TxnOpts {
        TxnOpts {
            mode: TxnMode::Snapshot,
            ..TxnOpts::default()
        }
    }

    /// Snapshot opened exactly `lag` behind the clock.
    pub fn snapshot_lagged(lag: Duration) -> TxnOpts {
        TxnOpts {
            mode: TxnMode::Snapshot,
            snapshot_lag: Some(lag),
            ..TxnOpts::default()
        }
    }

    /// Cache-speculating read-write transaction (§4.3 future-work mode).
    pub fn cached() -> TxnOpts {
        TxnOpts {
            cached: true,
            ..TxnOpts::default()
        }
    }
}

/// A MILANA client. Cloning shares the client.
#[derive(Clone)]
pub struct TxnClient {
    handle: SimHandle,
    id: ClientId,
    clock: Rc<SyncedClock>,
    map: Rc<RefCell<ShardMap>>,
    rpc: RpcClient,
    cfg: Rc<TxnClientConfig>,
    seq: Rc<Cell<u64>>,
    last_decided: Rc<Cell<Timestamp>>,
    /// Begin timestamps of transactions still in flight on this client.
    /// The watermark report must stay below all of them (§4.4), or garbage
    /// collection could discard a long-running reader's snapshot.
    active: Rc<RefCell<BTreeMap<Timestamp, usize>>>,
    /// Commit stamps drawn but not yet resolved (votes still pending). The
    /// write-floor promise (readkit) must stay below all of them: a floor
    /// report is "no future prepare at or below", and these prepares may
    /// still be on the wire.
    inflight_commits: Rc<RefCell<std::collections::BTreeSet<Timestamp>>>,
    /// Inter-transaction value cache (§4.3 future work): the newest version
    /// this client has observed per key, with the snapshot window a server
    /// confirmed it for. Bounded LRU; versions are immutable so entries
    /// only die by eviction, OCC refutation, or the GC floor.
    value_cache: Rc<RefCell<VersionCache<Key, Value>>>,
    /// Highest GC watermark observed on any replica reply. Monotone;
    /// advancing it invalidates cache entries whose confirmed windows fall
    /// entirely below it (servers may have pruned those versions).
    wm_floor: Rc<Cell<Timestamp>>,
    /// Per-replica applied-watermark / queue-depth metadata piggybacked on
    /// read replies, feeding the read-route policy.
    view: Rc<RefCell<ReplicaView<Addr>>>,
    stats: Rc<RefCell<TxnClientStats>>,
    /// Retry budget, backoff jitter, and per-shard circuit breakers.
    policy: Rc<RetryPolicy>,
    /// The client's node (coordinator-plane batchers are spawned on it).
    node: NodeId,
    /// Per-shard coordinator planes: Prepares and Outcomes bound for the
    /// same shard primary coalesce into one envelope per flush window.
    planes: Rc<RefCell<FastMap<ShardId, Batcher<TxnRequest, TxnResponse>>>>,
    /// Last watermark piggybacked per shard, to skip redundant items.
    wm_sent: Rc<RefCell<FastMap<ShardId, Timestamp>>>,
    /// When any plane last flushed. The periodic watermark broadcast stands
    /// down while envelopes are flowing (piggybacking covers it).
    last_flush: Rc<Cell<SimTime>>,
}

impl std::fmt::Debug for TxnClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnClient").field("id", &self.id).finish()
    }
}

/// Reply port used by MILANA clients on their node.
pub const TXN_CLIENT_RPC_PORT: u16 = 40;

/// The MILANA client under its public name. [`TxnClient`] remains as the
/// historical spelling; both are the same type.
pub type MilanaClient = TxnClient;

/// Builder for [`TxnClient`]: the four identity parameters are mandatory,
/// every knob defaults (perfect clock, [`TxnClientConfig`] defaults) and
/// can be overridden individually. Terminal call is
/// [`TxnClientBuilder::build`].
#[derive(Clone)]
pub struct TxnClientBuilder {
    handle: SimHandle,
    node: NodeId,
    id: ClientId,
    map: Rc<RefCell<ShardMap>>,
    clock: ClockSpec,
    cfg: TxnClientConfig,
}

impl TxnClientBuilder {
    /// Clock model: discipline plus fault knobs, in one spec (default:
    /// [`ClockSpec::perfect`]). Accepts a bare [`timesync::Discipline`] via `Into`.
    pub fn clock(mut self, clock: impl Into<ClockSpec>) -> Self {
        self.clock = clock.into();
        self
    }

    /// Replaces the whole config in one call (escape hatch for callers
    /// that already hold a [`TxnClientConfig`]).
    pub fn config(mut self, cfg: TxnClientConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Per-RPC timeout.
    pub fn rpc_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.rpc_timeout = timeout;
        self
    }

    /// Master address for shard-map refresh after repeated failures.
    pub fn master(mut self, master: simkit::net::Addr) -> Self {
        self.cfg.master = Some(master);
        self
    }

    /// Retries for reads that hit a recovering/leaseless primary.
    pub fn read_retries(mut self, retries: u32) -> Self {
        self.cfg.read_retries = retries;
        self
    }

    /// Where validation runs (§4.3) — see [`ValidationMode`].
    pub fn validation(mut self, mode: ValidationMode) -> Self {
        self.cfg.validation = mode;
        self
    }

    /// Watermark broadcast period (§4.4).
    pub fn watermark_interval(mut self, interval: Duration) -> Self {
        self.cfg.watermark_interval = interval;
        self
    }

    /// Observability sinks.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.cfg.obs = obs;
        self
    }

    /// Retry discipline: jittered backoff, budget, circuit breaker.
    pub fn retry(mut self, retry: RetryConfig) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Coordinator-plane flush window (see [`TxnClientConfig::batch`]).
    pub fn batch(mut self, batch: BatchConfig) -> Self {
        self.cfg.batch = batch;
        self
    }

    /// Replica routing for snapshot reads (see
    /// [`TxnClientConfig::read_route`]).
    pub fn read_route(mut self, route: ReadRoute) -> Self {
        self.cfg.read_route = route;
        self
    }

    /// Client-wide version-cache capacity; 0 disables the cache.
    pub fn cache_entries(mut self, entries: usize) -> Self {
        self.cfg.cache_entries = entries;
        self
    }

    /// Bounded-staleness snapshots: open transactions this far behind the
    /// clock so their reads are backup-eligible immediately.
    pub fn snapshot_lag(mut self, lag: Duration) -> Self {
        self.cfg.snapshot_lag = lag;
        self
    }

    /// Creates the client and starts its watermark task.
    pub fn build(self) -> TxnClient {
        TxnClient::build_inner(
            &self.handle,
            self.node,
            self.id,
            self.clock,
            self.map,
            self.cfg,
        )
    }
}

impl TxnClient {
    /// Starts a [`TxnClientBuilder`] from the mandatory identity
    /// parameters; every knob is defaulted and individually overridable.
    pub fn builder(
        handle: &SimHandle,
        node: NodeId,
        id: ClientId,
        map: Rc<RefCell<ShardMap>>,
    ) -> TxnClientBuilder {
        TxnClientBuilder {
            handle: handle.clone(),
            node,
            id,
            map,
            clock: ClockSpec::perfect(),
            cfg: TxnClientConfig::default(),
        }
    }

    fn build_inner(
        handle: &SimHandle,
        node: NodeId,
        id: ClientId,
        clock: ClockSpec,
        map: Rc<RefCell<ShardMap>>,
        cfg: TxnClientConfig,
    ) -> TxnClient {
        let clock_seed = handle.rand_u64();
        // Derive the jitter seed from the clock seed rather than drawing
        // again: the draw sequence other components see stays unchanged.
        let policy = Rc::new(RetryPolicy::observed(
            cfg.retry.clone(),
            StdRng::seed_from_u64(clock_seed ^ 0x9E37_79B9_7F4A_7C15),
            &cfg.obs,
            id.0 as u64,
        ));
        let cache_entries = cfg.cache_entries;
        let client = TxnClient {
            handle: handle.clone(),
            id,
            clock: Rc::new(SyncedClock::from_spec(&clock, clock_seed)),
            map,
            rpc: RpcClient::new(handle, node, TXN_CLIENT_RPC_PORT),
            cfg: Rc::new(cfg),
            seq: Rc::new(Cell::new(0)),
            last_decided: Rc::new(Cell::new(Timestamp::ZERO)),
            active: Rc::new(RefCell::new(BTreeMap::new())),
            inflight_commits: Rc::new(RefCell::new(std::collections::BTreeSet::new())),
            value_cache: Rc::new(RefCell::new(VersionCache::new(cache_entries))),
            wm_floor: Rc::new(Cell::new(Timestamp::ZERO)),
            view: Rc::new(RefCell::new(ReplicaView::new())),
            stats: Rc::new(RefCell::new(TxnClientStats::default())),
            policy,
            node,
            planes: Rc::new(RefCell::new(FastMap::default())),
            wm_sent: Rc::new(RefCell::new(FastMap::default())),
            last_flush: Rc::new(Cell::new(SimTime::ZERO)),
        };
        client
            .clock
            .attach_tracer(&client.cfg.obs.tracer, id.0 as u64);
        let me = client.clone();
        handle.spawn_on(node, async move {
            loop {
                me.handle.sleep(me.cfg.watermark_interval).await;
                // Steady state: coordinator-plane envelopes piggyback the
                // watermark (primaries relay it to their backups), so the
                // standalone tick only covers idle periods.
                if me.last_flush.get() + me.cfg.watermark_interval <= me.handle.now() {
                    me.broadcast_watermark();
                }
            }
        });
        client
    }

    /// The coordinator plane for `shard`: a batcher coalescing this
    /// client's Prepares/Outcomes bound for that shard's primary into one
    /// envelope per flush window. Created lazily; the primary address is
    /// resolved from the shard map at *flush* time so failover between
    /// submit and flush lands on the new primary.
    fn plane(&self, shard: ShardId) -> Batcher<TxnRequest, TxnResponse> {
        if let Some(b) = self.planes.borrow().get(&shard) {
            return b.clone();
        }
        let me = self.clone();
        let envelopes = self
            .cfg
            .obs
            .registry
            .counter(&format!("milana.client{}.coord_envelopes", self.id.0));
        let items = self
            .cfg
            .obs
            .registry
            .counter(&format!("milana.client{}.coord_items", self.id.0));
        let batcher = Batcher::new(
            &self.handle,
            self.node,
            &format!("milana.coord.c{}.s{}", self.id.0, shard.0),
            self.cfg.batch,
            self.cfg.obs.clone(),
            move |batch: Vec<TxnRequest>| {
                let me = me.clone();
                let envelopes = envelopes.clone();
                let items = items.clone();
                async move {
                    let n = batch.len();
                    // Piggyback the watermark when it moved since the last
                    // envelope to this shard; its Ack is stripped below so
                    // the reply arity matches the submitted items.
                    let ts = me.watermark_report();
                    let piggyback = {
                        let mut sent = me.wm_sent.borrow_mut();
                        if sent.get(&shard) != Some(&ts) {
                            sent.insert(shard, ts);
                            true
                        } else {
                            false
                        }
                    };
                    let mut wire = Vec::with_capacity(n + 2);
                    if piggyback {
                        wire.push(TxnRequest::Watermark { client: me.id, ts });
                    }
                    // The write floor rides every envelope: it moves with
                    // the clock, so deduplication would never skip it.
                    wire.push(TxnRequest::FloorReport {
                        client: me.id,
                        ts: me.floor_report(),
                    });
                    let strip = wire.len();
                    wire.extend(batch);
                    me.last_flush.set(me.handle.now());
                    envelopes.inc();
                    items.add(n as u64);
                    let primary = me.map.borrow().group(shard).primary;
                    match me
                        .rpc
                        .call_batch::<TxnRequest, TxnResponse>(primary, wire, me.cfg.rpc_timeout)
                        .await
                    {
                        Ok(mut resps) => {
                            resps.drain(..strip.min(resps.len()));
                            resps
                        }
                        // Envelope lost or timed out: every waiter resolves
                        // to None, which the coordinator classifies exactly
                        // like a single-RPC timeout (unreachable).
                        Err(_) => {
                            if piggyback {
                                // The watermark never landed; let the next
                                // envelope (or the idle tick) resend it.
                                me.wm_sent.borrow_mut().remove(&shard);
                            }
                            Vec::new()
                        }
                    }
                }
            },
        );
        self.planes.borrow_mut().insert(shard, batcher.clone());
        batcher
    }

    /// Sends the watermark report to every replica of every shard (§4.4).
    ///
    /// The reported timestamp is the latest decided transaction's stamp,
    /// capped below every still-active transaction's `ts_begin` so servers
    /// retain the versions a long-running snapshot reader still needs.
    pub fn broadcast_watermark(&self) {
        let ts = self.watermark_report();
        let floor = self.floor_report();
        let map = self.map.borrow();
        for (_, group) in map.iter() {
            for addr in group.all() {
                self.rpc.cast(
                    addr,
                    TxnRequest::Watermark {
                        client: self.id,
                        ts,
                    },
                );
            }
            // The write floor goes to the primary only: backups must learn
            // it through the primary's in-order `AppliedFloor` stream, or
            // it would not be a completeness claim.
            self.rpc.cast(
                group.primary,
                TxnRequest::FloorReport {
                    client: self.id,
                    ts: floor,
                },
            );
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Reads the client's local (skewed, monotonic) clock.
    pub fn now(&self) -> Timestamp {
        self.clock.now(self.handle.now())
    }

    /// The client's clock (skew instrumentation).
    pub fn clock(&self) -> &SyncedClock {
        &self.clock
    }

    /// Counters so far.
    pub fn stats(&self) -> TxnClientStats {
        *self.stats.borrow()
    }

    /// Begins a transaction described by `opts` — the single entry point
    /// the historical `begin` / `begin_snapshot` / `begin_cached` trio
    /// collapsed into.
    ///
    /// ```ignore
    /// let txn = client.begin_with(TxnOpts::default());          // read-write
    /// let ro  = client.begin_with(TxnOpts::snapshot());          // lagged snapshot
    /// let spec = client.begin_with(TxnOpts::cached());           // cache-speculating
    /// ```
    pub fn begin_with(&self, opts: TxnOpts) -> Txn {
        let lag = match opts.mode {
            TxnMode::ReadWrite => Duration::ZERO,
            TxnMode::Snapshot => opts.snapshot_lag.unwrap_or(self.cfg.snapshot_lag),
        };
        self.begin_inner(opts.cached, lag)
    }

    fn begin_inner(&self, use_client_cache: bool, lag: Duration) -> Txn {
        let ts_begin = Timestamp(self.now().0.saturating_sub(lag.as_nanos() as u64));
        self.register_active(ts_begin);
        self.trace(TraceEvent::TxnBegin {
            client: self.id.0 as u64,
            ts_begin: ts_begin.0,
        });
        Txn {
            c: self.clone(),
            ts_begin,
            read_set: Vec::new(),
            prepared_seen: false,
            snapshot_lost: false,
            writes: Vec::new(),
            write_idx: FastMap::default(),
            cache: FastMap::default(),
            use_client_cache,
            requires_remote: false,
            cache_hits: 0,
            finished: false,
        }
    }

    fn note_decided(&self, ts: Timestamp) {
        if ts > self.last_decided.get() {
            self.last_decided.set(ts);
        }
    }

    /// The timestamp this client may safely report for GC (§4.4): its
    /// latest decided stamp, but never at/above an active `ts_begin`.
    pub fn watermark_report(&self) -> Timestamp {
        let decided = self.last_decided.get();
        match self.active.borrow().keys().next() {
            Some(&oldest_active) if oldest_active <= decided => {
                Timestamp(oldest_active.0.saturating_sub(1))
            }
            _ => decided,
        }
    }

    /// The write-floor promise (readkit): this client will never submit a
    /// prepare stamped at or below the returned timestamp. Its clock is
    /// monotone, so future commit stamps exceed `now`; stamps already
    /// drawn but still unresolved cap the report from below. Active
    /// *snapshots* do not hold it back — that is what lets the floor track
    /// wall time and certify backups for fresh reads.
    pub fn floor_report(&self) -> Timestamp {
        let now = self.now();
        match self.inflight_commits.borrow().iter().next() {
            Some(&oldest) if oldest <= now => Timestamp(oldest.0.saturating_sub(1)),
            _ => now,
        }
    }

    /// Fetches a fresh shard map from the master (if configured) and
    /// installs it when its epoch is newer than the local copy.
    pub async fn refresh_map(&self) {
        let Some(master) = self.cfg.master else {
            return;
        };
        if let Ok(new_map) = semel::master::fetch_map(&self.rpc, master, self.cfg.rpc_timeout).await
        {
            let mut map = self.map.borrow_mut();
            if new_map.epoch() > map.epoch() {
                *map = new_map;
            }
        }
    }

    fn trace(&self, ev: TraceEvent) {
        self.cfg.obs.tracer.record(self.handle.now().as_nanos(), ev);
    }

    /// The client's retry policy (overload instrumentation).
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn sim_ns(&self) -> u64 {
        self.handle.now().as_nanos()
    }

    /// Waits (within the retry budget) for `shard`'s circuit breaker to
    /// allow an attempt. Returns false when the budget runs out first.
    async fn wait_for_breaker(&self, shard: ShardId) -> bool {
        loop {
            if self.policy.shard_allows(shard.0 as u64, self.sim_ns()) {
                return true;
            }
            let cooldown = self.policy.config().breaker_cooldown;
            match self.policy.try_retry(self.sim_ns(), Some(cooldown)) {
                Some(delay) => self.handle.sleep(delay).await,
                None => return false,
            }
        }
    }

    /// Records a GC watermark piggybacked on a replica reply. The floor is
    /// monotone; advancing it drops cache entries whose confirmed windows
    /// lie entirely below it, since servers may prune those versions.
    fn observe_floor(&self, wm: Timestamp) {
        if wm > self.wm_floor.get() {
            self.wm_floor.set(wm);
            self.value_cache.borrow_mut().invalidate_below(wm);
        }
    }

    /// Highest replica GC watermark this client has observed.
    pub fn watermark_floor(&self) -> Timestamp {
        self.wm_floor.get()
    }

    /// Client-wide version-cache occupancy and lifetime hit/miss counts.
    pub fn cache_counters(&self) -> (usize, u64, u64) {
        let vc = self.value_cache.borrow();
        (vc.len(), vc.hits(), vc.misses())
    }

    fn register_active(&self, ts: Timestamp) {
        *self.active.borrow_mut().entry(ts).or_insert(0) += 1;
    }

    fn deregister_active(&self, ts: Timestamp) {
        let mut active = self.active.borrow_mut();
        if let Some(n) = active.get_mut(&ts) {
            *n -= 1;
            if *n == 0 {
                active.remove(&ts);
            }
        }
    }
}

/// One executing transaction (§4.1's API: `get`, `put`, `commit`, `abort`).
///
/// Reads are satisfied at `ts_begin` from a consistent snapshot; writes are
/// buffered client-side and pushed to the shard primaries only at commit.
///
/// # Examples
///
/// See the crate root and `examples/quickstart.rs`.
#[derive(Debug)]
pub struct Txn {
    c: TxnClient,
    ts_begin: Timestamp,
    read_set: Vec<(Key, Version)>,
    prepared_seen: bool,
    snapshot_lost: bool,
    writes: Vec<(Key, Value)>,
    write_idx: FastMap<Key, usize>,
    cache: FastMap<Key, Value>,
    /// §4.3 cached mode: serve reads from the client-wide value cache and
    /// validate remotely at commit.
    use_client_cache: bool,
    /// Set by reads that carry no local-validation information (cached
    /// reads, replica reads): the commit must validate remotely even if
    /// the transaction is read-only.
    requires_remote: bool,
    /// Reads served from the client-wide cache (instrumentation).
    cache_hits: u64,
    finished: bool,
}

/// What `commit` reports on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitInfo {
    /// The commit timestamp; `None` for read-only transactions (which
    /// logically commit at `ts_begin`).
    pub ts_commit: Option<Timestamp>,
    /// True if the decision was made by client-local validation.
    pub local: bool,
}

impl Drop for Txn {
    fn drop(&mut self) {
        // A transaction abandoned without commit/abort must still release
        // its hold on the client's watermark report.
        if !self.finished {
            self.finished = true;
            self.c.deregister_active(self.ts_begin);
        }
    }
}

impl Txn {
    /// The transaction's begin timestamp.
    pub fn ts_begin(&self) -> Timestamp {
        self.ts_begin
    }

    /// True once no writes have been buffered so far.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Reads `key` from the transaction's snapshot. Own writes win, then
    /// cached reads, then the shard primary at `ts_begin`.
    ///
    /// # Errors
    ///
    /// - [`TxnError::KeyNotFound`] if the key has no visible version;
    /// - [`TxnError::Aborted`] with [`AbortReason::SnapshotUnavailable`] on
    ///   single-version backends that lost the snapshot;
    /// - [`TxnError::Timeout`] if the primary stays unreachable.
    pub async fn get(&mut self, key: &Key) -> Result<Value, TxnError> {
        if self.finished {
            return Err(TxnError::Finished);
        }
        if let Some(&i) = self.write_idx.get(key) {
            return Ok(self.writes[i].1.clone());
        }
        if let Some(v) = self.cache.get(key) {
            return Ok(v.clone());
        }
        // Client-wide version cache. A *windowed* hit (a server confirmed
        // the version newest for some `at' ≥ ts_begin`) is sound as-is and
        // keeps local-validation eligibility: no later prepare can install
        // a version at or below the confirmed bound (the read that set the
        // bound raised `ts_latestRead`, or rode below the GC watermark).
        // Cached mode additionally takes *speculative* hits — the newest
        // version the client knows, past its confirmed window — which OCC
        // must re-validate remotely at commit.
        {
            let mut vc = self.c.value_cache.borrow_mut();
            let hit = if self.use_client_cache {
                vc.lookup_latest(key, self.ts_begin).cloned()
            } else {
                vc.lookup(key, self.ts_begin).cloned()
            };
            drop(vc);
            if let Some(e) = hit {
                // Cached reads still enter the read-set with their version
                // stamp so commit-time validation covers them.
                self.read_set.push((key.clone(), e.version));
                if self.use_client_cache {
                    self.requires_remote = true;
                }
                self.c.trace(TraceEvent::TxnRead {
                    client: self.c.id.0 as u64,
                    key: key.trace_id(),
                    prepared: false,
                    ver_ts: e.version.ts.0,
                    ver_client: e.version.client.0 as u64,
                });
                self.cache.insert(key.clone(), e.value.clone());
                self.cache_hits += 1;
                self.c.stats.borrow_mut().cached_reads += 1;
                return Ok(e.value);
            }
        }
        self.c.policy.on_attempt();
        for attempt in 0..=self.c.cfg.read_retries {
            // Re-resolve the primary each attempt: the shard map may have
            // been updated by a failover while we were retrying.
            let (shard, primary, backups) = {
                let map = self.c.map.borrow();
                let shard = map.shard_for(key);
                let group = map.group(shard);
                (shard, group.primary, group.backups.clone())
            };
            // A tripped breaker means the shard is actively shedding; wait
            // out the cooldown (within budget) instead of piling on.
            if !self.c.wait_for_breaker(shard).await {
                return Err(TxnError::Aborted(AbortReason::Overloaded));
            }
            // Read routing: on the first attempt, try a backup whose
            // applied watermark covers the snapshot. Any miss (TooStale,
            // timeout, migration fence) falls through to the primary.
            if attempt == 0 {
                let now_ns = self.c.sim_ns();
                let stale_after = 2 * self.c.cfg.watermark_interval.as_nanos() as u64;
                let picked = self.c.view.borrow().pick(
                    self.c.cfg.read_route,
                    &backups,
                    self.ts_begin,
                    stale_after,
                    now_ns,
                    |n| self.c.handle.rand_range(0, n),
                );
                if let Some(replica) = picked {
                    if let Some(done) = self.read_from_replica(shard, replica, key).await {
                        return done;
                    }
                }
            }
            let r = self
                .c
                .rpc
                .call::<TxnRequest, TxnResponse>(
                    primary,
                    TxnRequest::Get {
                        key: key.clone(),
                        at: self.ts_begin,
                        client: self.c.id,
                    },
                    self.c.cfg.rpc_timeout,
                )
                .await;
            match r {
                Ok(TxnResponse::Value {
                    version,
                    value,
                    prepared,
                }) => {
                    self.c.policy.record_ok(shard.0 as u64);
                    return Ok(self.note_value(key, version, value, prepared));
                }
                Ok(TxnResponse::NotFound) => return Err(TxnError::KeyNotFound(key.clone())),
                Ok(TxnResponse::SnapshotUnavailable(_)) => {
                    // The version this snapshot needs is gone (single-version
                    // backend); the transaction cannot serialize at ts_begin.
                    self.snapshot_lost = true;
                    return Err(TxnError::Aborted(AbortReason::SnapshotUnavailable));
                }
                Ok(TxnResponse::ClockSuspect) => {
                    // The server judged our ts_begin too far past its own
                    // clock to honor the read's snapshot promise. Retrying
                    // with the same clock would be refused again — abort and
                    // let the app-level retry mint a fresh timestamp.
                    return Err(TxnError::Aborted(AbortReason::ClockSuspect));
                }
                Ok(TxnResponse::Shed(shed)) => {
                    self.c.policy.record_shed(shard.0 as u64, self.c.sim_ns());
                    if attempt < self.c.cfg.read_retries {
                        if let Some(delay) =
                            self.c.policy.try_retry(self.c.sim_ns(), shed.retry_after())
                        {
                            self.c.handle.sleep(delay).await;
                            continue;
                        }
                    }
                    return Err(TxnError::Aborted(AbortReason::Overloaded));
                }
                // The key was cut over to another shard: refetch the map
                // immediately (no point retrying the old owner) and re-route.
                Ok(TxnResponse::Moved { .. }) => {
                    if attempt < self.c.cfg.read_retries {
                        self.c.refresh_map().await;
                        if let Some(delay) = self.c.policy.try_retry(self.c.sim_ns(), None) {
                            self.c.handle.sleep(delay).await;
                            continue;
                        }
                    }
                    return Err(TxnError::Timeout);
                }
                Ok(TxnResponse::NotReady) | Err(RpcError::Timeout) => {
                    if attempt < self.c.cfg.read_retries {
                        // Every few failures, ask the master whether the
                        // shard map changed underneath us (failover).
                        if attempt % 3 == 2 {
                            self.c.refresh_map().await;
                        }
                        if let Some(delay) = self.c.policy.try_retry(self.c.sim_ns(), None) {
                            self.c.handle.sleep(delay).await;
                            continue;
                        }
                    }
                    return Err(TxnError::Timeout);
                }
                Ok(_) | Err(RpcError::Closed) => return Err(TxnError::Timeout),
            }
        }
        Err(TxnError::Timeout)
    }

    /// Books a server-served snapshot read: read-set entry, prepared flag,
    /// trace event, txn-local cache, and the client-wide version cache.
    /// Only unprepared reads feed the shared cache — the prepared flag is
    /// point-in-time and must not be laundered into later transactions.
    fn note_value(&mut self, key: &Key, version: Version, value: Value, prepared: bool) -> Value {
        self.read_set.push((key.clone(), version));
        self.prepared_seen |= prepared;
        self.c.trace(TraceEvent::TxnRead {
            client: self.c.id.0 as u64,
            key: key.trace_id(),
            prepared,
            ver_ts: version.ts.0,
            ver_client: version.client.0 as u64,
        });
        self.cache.insert(key.clone(), value.clone());
        if !prepared {
            // The server confirmed `version` newest at ts_begin: that is
            // the entry's (initial) sound snapshot window.
            self.c.value_cache.borrow_mut().insert(
                key.clone(),
                version,
                value.clone(),
                self.ts_begin,
            );
        }
        value
    }

    /// One routed read attempt against a backup replica. `Some(result)`
    /// resolves the read (or aborts the snapshot); `None` means the backup
    /// could not serve it — fall through to the primary.
    async fn read_from_replica(
        &mut self,
        shard: ShardId,
        replica: Addr,
        key: &Key,
    ) -> Option<Result<Value, TxnError>> {
        let r = self
            .c
            .rpc
            .call::<TxnRequest, TxnResponse>(
                replica,
                TxnRequest::ReadAt {
                    key: key.clone(),
                    at: self.ts_begin,
                    client: self.c.id,
                },
                self.c.cfg.rpc_timeout,
            )
            .await;
        let now_ns = self.c.sim_ns();
        match r {
            Ok(TxnResponse::FromReplica {
                reply,
                watermark,
                depth,
            }) => {
                self.c
                    .view
                    .borrow_mut()
                    .observe(replica, watermark, depth, now_ns);
                self.c.observe_floor(watermark);
                match *reply {
                    TxnResponse::Value {
                        version,
                        value,
                        prepared,
                    } => {
                        self.c.policy.record_ok(shard.0 as u64);
                        self.c.stats.borrow_mut().replica_reads += 1;
                        Some(Ok(self.note_value(key, version, value, prepared)))
                    }
                    TxnResponse::NotFound => {
                        self.c.policy.record_ok(shard.0 as u64);
                        self.c.stats.borrow_mut().replica_reads += 1;
                        Some(Err(TxnError::KeyNotFound(key.clone())))
                    }
                    TxnResponse::SnapshotUnavailable(_) => {
                        self.snapshot_lost = true;
                        Some(Err(TxnError::Aborted(AbortReason::SnapshotUnavailable)))
                    }
                    _ => None,
                }
            }
            // The backup has not applied up to ts_begin yet: remember how
            // far it has, and let the primary serve this read.
            Ok(TxnResponse::TooStale { watermark }) => {
                self.c
                    .view
                    .borrow_mut()
                    .observe(replica, watermark, 0, now_ns);
                self.c.observe_floor(watermark);
                None
            }
            // A promoted ex-backup answers like the primary it now is.
            Ok(TxnResponse::Value {
                version,
                value,
                prepared,
            }) => {
                self.c.policy.record_ok(shard.0 as u64);
                Some(Ok(self.note_value(key, version, value, prepared)))
            }
            Ok(TxnResponse::NotFound) => Some(Err(TxnError::KeyNotFound(key.clone()))),
            // An explicit refusal: the replica is cold-restarting and its
            // applied watermark regressed to zero. Forget its cached
            // (pre-restart) watermark — `observe` is monotone, so the old
            // promise would otherwise keep attracting routed reads that
            // are guaranteed to bounce until catch-up re-promises the
            // write floor.
            Ok(TxnResponse::NotReady) => {
                self.c.view.borrow_mut().forget(&replica);
                None
            }
            // Anything else — Moved (migration fence), Shed, a lost RPC —
            // falls through to the primary, whose own reply drives the
            // retry/refresh machinery.
            _ => None,
        }
    }

    /// Snapshot read served by **any replica** of the owning shard —
    /// §4.6's load-spreading relaxation. Because the reply carries no
    /// prepared-version information, the transaction loses local-validation
    /// eligibility and will validate remotely at commit; use this only on
    /// transactions that write (or validate remotely anyway).
    ///
    /// # Errors
    ///
    /// As [`Txn::get`].
    pub async fn get_any(&mut self, key: &Key) -> Result<Value, TxnError> {
        if self.finished {
            return Err(TxnError::Finished);
        }
        if let Some(&i) = self.write_idx.get(key) {
            return Ok(self.writes[i].1.clone());
        }
        if let Some(v) = self.cache.get(key) {
            return Ok(v.clone());
        }
        self.c.policy.on_attempt();
        for attempt in 0..=self.c.cfg.read_retries {
            // Pick a random replica of the owning shard each attempt.
            let (shard, replica) = {
                let map = self.c.map.borrow();
                let shard = map.shard_for(key);
                let group = map.group(shard);
                let all = group.all();
                let i = self.c.handle.rand_range(0, all.len() as u64) as usize;
                (shard, all[i])
            };
            if !self.c.wait_for_breaker(shard).await {
                return Err(TxnError::Aborted(AbortReason::Overloaded));
            }
            let r = self
                .c
                .rpc
                .call::<TxnRequest, TxnResponse>(
                    replica,
                    TxnRequest::GetAny {
                        key: key.clone(),
                        at: self.ts_begin,
                    },
                    self.c.cfg.rpc_timeout,
                )
                .await;
            match r {
                Ok(TxnResponse::Value { version, value, .. }) => {
                    self.c.policy.record_ok(shard.0 as u64);
                    self.read_set.push((key.clone(), version));
                    self.requires_remote = true; // no LV info from replicas
                    self.c.trace(TraceEvent::TxnRead {
                        client: self.c.id.0 as u64,
                        key: key.trace_id(),
                        prepared: false,
                        ver_ts: version.ts.0,
                        ver_client: version.client.0 as u64,
                    });
                    self.cache.insert(key.clone(), value.clone());
                    return Ok(value);
                }
                Ok(TxnResponse::NotFound) => return Err(TxnError::KeyNotFound(key.clone())),
                Ok(TxnResponse::SnapshotUnavailable(_)) => {
                    self.snapshot_lost = true;
                    return Err(TxnError::Aborted(AbortReason::SnapshotUnavailable));
                }
                Ok(TxnResponse::Shed(shed)) => {
                    self.c.policy.record_shed(shard.0 as u64, self.c.sim_ns());
                    if attempt < self.c.cfg.read_retries {
                        if let Some(delay) =
                            self.c.policy.try_retry(self.c.sim_ns(), shed.retry_after())
                        {
                            self.c.handle.sleep(delay).await;
                            continue;
                        }
                    }
                    return Err(TxnError::Aborted(AbortReason::Overloaded));
                }
                Ok(TxnResponse::Moved { .. }) => {
                    if attempt < self.c.cfg.read_retries {
                        self.c.refresh_map().await;
                        if let Some(delay) = self.c.policy.try_retry(self.c.sim_ns(), None) {
                            self.c.handle.sleep(delay).await;
                            continue;
                        }
                    }
                    return Err(TxnError::Timeout);
                }
                Ok(TxnResponse::NotReady) | Err(RpcError::Timeout) => {
                    if attempt < self.c.cfg.read_retries {
                        if let Some(delay) = self.c.policy.try_retry(self.c.sim_ns(), None) {
                            self.c.handle.sleep(delay).await;
                            continue;
                        }
                    }
                    return Err(TxnError::Timeout);
                }
                Ok(_) | Err(RpcError::Closed) => return Err(TxnError::Timeout),
            }
        }
        Err(TxnError::Timeout)
    }

    /// Buffers a write; nothing reaches a server until commit (§4.1).
    pub fn put(&mut self, key: Key, value: Value) {
        assert!(!self.finished, "put on a finished transaction");
        match self.write_idx.get(&key) {
            Some(&i) => self.writes[i].1 = value,
            None => {
                self.write_idx.insert(key.clone(), self.writes.len());
                self.writes.push((key, value));
            }
        }
    }

    /// Discards the transaction (§4.1 `abortTransaction`).
    pub fn abort(mut self) {
        self.finished = true;
        self.c.deregister_active(self.ts_begin);
        self.c.note_decided(self.ts_begin);
        self.c.stats.borrow_mut().aborts += 1;
        self.c.trace(TraceEvent::Abort {
            client: self.c.id.0 as u64,
            reason: obskit::AbortClass::UserRequested,
        });
    }

    /// Commits (§4.1 `commitTransaction`).
    ///
    /// Read-only transactions validate **locally** when enabled: commit iff
    /// no read returned a prepared-version flag (§4.3) — zero round trips.
    /// Read-write transactions run client-coordinated 2PC over the shard
    /// primaries (§4.2).
    ///
    /// # Errors
    ///
    /// - [`TxnError::Aborted`] if validation failed anywhere;
    /// - [`TxnError::Timeout`] with [`AbortReason`] semantics preserved: if
    ///   a participant is unreachable *after* some prepares succeeded the
    ///   outcome is unknown and is surfaced as `Timeout` (the transaction
    ///   resolves later via cooperative termination).
    pub async fn commit(mut self) -> Result<CommitInfo, TxnError> {
        if self.finished {
            return Err(TxnError::Finished);
        }
        self.finished = true;
        self.c.deregister_active(self.ts_begin);
        if self.snapshot_lost {
            self.c.note_decided(self.ts_begin);
            self.c.stats.borrow_mut().aborts += 1;
            self.c.trace(TraceEvent::Abort {
                client: self.c.id.0 as u64,
                reason: obskit::AbortClass::SnapshotUnavailable,
            });
            return Err(TxnError::Aborted(AbortReason::SnapshotUnavailable));
        }
        if self.writes.is_empty() && self.c.cfg.validation.is_local() && !self.requires_remote {
            // §4.3: every read already proved it came from a consistent
            // snapshot unless a prepared version was visible at ts_begin.
            self.c.note_decided(self.ts_begin);
            let ok = !self.prepared_seen;
            self.c.trace(TraceEvent::ValidateLocal {
                client: self.c.id.0 as u64,
                ok,
            });
            let mut stats = self.c.stats.borrow_mut();
            stats.local_validations += 1;
            return if self.prepared_seen {
                stats.aborts += 1;
                drop(stats);
                self.c.trace(TraceEvent::Abort {
                    client: self.c.id.0 as u64,
                    reason: obskit::AbortClass::PreparedRead,
                });
                Err(TxnError::Aborted(AbortReason::PreparedRead))
            } else {
                stats.commits += 1;
                drop(stats);
                self.c.trace(TraceEvent::Commit {
                    client: self.c.id.0 as u64,
                    ts_commit: self.ts_begin.0,
                    local: true,
                });
                Ok(CommitInfo {
                    ts_commit: None,
                    local: true,
                })
            };
        }
        let ts_commit = self.c.now();
        self.c.inflight_commits.borrow_mut().insert(ts_commit);
        let txid = TxnId {
            client: self.c.id,
            seq: self.c.seq.replace(self.c.seq.get() + 1),
        };
        // Group read and write sets by shard, remembering which map epoch
        // the routing came from — servers fence prepares routed under an
        // epoch older than a migration cutover.
        type ShardSets = FastMap<ShardId, (Vec<(Key, Version)>, Vec<(Key, Value)>)>;
        let mut by_shard: ShardSets = FastMap::default();
        let epoch = {
            let map = self.c.map.borrow();
            for (key, version) in &self.read_set {
                let s = map.shard_for(key);
                by_shard
                    .entry(s)
                    .or_default()
                    .0
                    .push((key.clone(), *version));
            }
            for (key, value) in &self.writes {
                let s = map.shard_for(key);
                by_shard
                    .entry(s)
                    .or_default()
                    .1
                    .push((key.clone(), value.clone()));
            }
            map.epoch()
        };
        let mut participants: Vec<ShardId> = by_shard.keys().copied().collect();
        participants.sort();
        let participants: Rc<[ShardId]> = participants.into();
        self.c.trace(TraceEvent::ValidateRemote {
            client: self.c.id.0 as u64,
            participants: participants.len() as u64,
        });
        // Declare the write set before the prepare fan-out so a history
        // checker can recover it even when the outcome ends up unknown.
        for (key, _) in &self.writes {
            self.c.trace(TraceEvent::TxnWrite {
                client: self.c.id.0 as u64,
                key: key.trace_id(),
            });
        }
        // Phase 1: prepare in parallel at every participant primary
        // (iterated in shard order for determinism).
        let mut votes = Vec::new();
        let mut shards_sorted: Vec<&ShardId> = by_shard.keys().collect();
        shards_sorted.sort();
        let shards_sorted: Vec<ShardId> = shards_sorted.into_iter().copied().collect();
        for &shard in &shards_sorted {
            let (reads, writes) = by_shard.remove(&shard).unwrap_or_default();
            let req = TxnRequest::Prepare {
                txid,
                ts_commit,
                reads: reads.into(),
                writes: writes.into(),
                participants: participants.clone(),
                epoch,
            };
            // Submit through the shard's coordinator plane: the Prepare is
            // enqueued synchronously here (so all participants coalesce in
            // the same flush window) and the future resolves with that
            // item's slot from the batched reply.
            votes.push(self.c.plane(shard).submit(req));
        }
        let mut all_ok = true;
        let mut any_unreachable = false;
        let mut any_vote_no = false;
        let mut any_shed = false;
        let mut any_stale = false;
        let mut any_clock = false;
        for (v, &shard) in votes.into_iter().zip(&shards_sorted) {
            match v.await {
                Some(TxnResponse::Vote { ok }) => {
                    self.c.policy.record_ok(shard.0 as u64);
                    all_ok &= ok;
                    any_vote_no |= !ok;
                }
                // A fenced prepare is a definite no-vote: the participant
                // installed nothing. The routing map is stale (a rebalance
                // moved one of our keys), so refetch it before the caller's
                // next attempt.
                Some(TxnResponse::StaleEpoch { .. }) => {
                    self.c.policy.record_ok(shard.0 as u64);
                    all_ok = false;
                    any_stale = true;
                }
                // A clock-suspect refusal is a definite no-vote: the
                // server's clock-health tracker judged our ts_commit
                // outside the uncertainty window (or we are fenced).
                // Nothing was validated or installed.
                Some(TxnResponse::ClockSuspect) => {
                    self.c.policy.record_ok(shard.0 as u64);
                    all_ok = false;
                    any_clock = true;
                }
                // A shed prepare is a *definite* no-vote: the participant
                // refused before validating or installing anything, so the
                // coordinator may abort safely — no outcome uncertainty.
                Some(TxnResponse::Shed(_)) => {
                    self.c.policy.record_shed(shard.0 as u64, self.c.sim_ns());
                    all_ok = false;
                    any_shed = true;
                }
                // NotReady (recovering primary / duplicate in flight) or a
                // lost envelope: same classification as a timed-out RPC.
                Some(_) | None => any_unreachable = true,
            }
        }
        // The vote fan-out has resolved: decided prepares are installed at
        // their primaries, and any straggler from an unreachable one dies
        // on the server's floor fence — either way the stamp no longer
        // needs to cap this client's write-floor promise.
        self.c.inflight_commits.borrow_mut().remove(&ts_commit);
        self.c.note_decided(ts_commit);
        if any_unreachable && all_ok {
            // Some participant may have prepared but we cannot know the
            // complete vote: deciding either way here could diverge from
            // cooperative termination. Leave the outcome to CTP (§4.5).
            self.c.stats.borrow_mut().unknown += 1;
            self.c.trace(TraceEvent::Abort {
                client: self.c.id.0 as u64,
                reason: obskit::AbortClass::UnknownOutcome,
            });
            return Err(TxnError::Timeout);
        }
        // Phase 2: decision (asynchronous notification, §4.2). Outcomes
        // ride the coordinator plane so a decision shares its envelope with
        // whatever else is pending for the shard, but the plane is flushed
        // before returning: a read this client issues right after commit()
        // must not overtake the decision on the wire.
        let commit = all_ok;
        for &shard in participants.iter() {
            let plane = self.c.plane(shard);
            plane.submit_nowait(TxnRequest::Outcome { txid, commit });
            plane.flush_now();
        }
        self.c.handle.yield_now().await;
        if any_stale {
            // Install the post-rebalance map now so the application-level
            // retry routes (and re-reads) under the new epoch.
            self.c.refresh_map().await;
        }
        if commit {
            // Refresh the inter-transaction cache with our own writes: the
            // write is the newest version up to its own commit stamp.
            let mut vc = self.c.value_cache.borrow_mut();
            for (key, value) in &self.writes {
                vc.insert(
                    key.clone(),
                    Version::new(ts_commit, self.c.id),
                    value.clone(),
                    ts_commit,
                );
            }
        } else if self.use_client_cache {
            // Validation failed: our cached reads may be stale. Drop them so
            // the next attempt refetches fresh versions.
            let mut vc = self.c.value_cache.borrow_mut();
            for (key, _) in &self.read_set {
                vc.remove(key);
            }
        }
        let mut stats = self.c.stats.borrow_mut();
        if commit {
            stats.commits += 1;
            drop(stats);
            self.c.trace(TraceEvent::Commit {
                client: self.c.id.0 as u64,
                ts_commit: ts_commit.0,
                local: false,
            });
            Ok(CommitInfo {
                ts_commit: Some(ts_commit),
                local: false,
            })
        } else {
            stats.aborts += 1;
            drop(stats);
            // Any real validation rejection takes precedence as the reason;
            // then a clock-health refusal (the timestamp itself was
            // rejected), then epoch fencing (retry after the map refresh
            // above), then pure overload shedding.
            let reason = if any_vote_no {
                AbortReason::Validation
            } else if any_clock {
                AbortReason::ClockSuspect
            } else if any_stale {
                AbortReason::StaleEpoch
            } else if any_shed {
                AbortReason::Overloaded
            } else {
                AbortReason::Validation
            };
            self.c.trace(TraceEvent::Abort {
                client: self.c.id.0 as u64,
                reason: reason.class(),
            });
            Err(TxnError::Aborted(reason))
        }
    }

    /// Reads served from the client-wide cache so far (cached mode).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }
}
