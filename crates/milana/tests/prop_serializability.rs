//! Property-based end-to-end serializability checks.
//!
//! The workload is a set of per-key counters incremented by read-modify-
//! write transactions. Under a serializable schedule every committed
//! increment is built on its predecessor's value, so for every key:
//!
//! `final counter value == number of committed transactions that wrote it`
//!
//! Any lost update, dirty read, or broken snapshot breaks the equality.
//! We run it across random cluster shapes, clock disciplines, backends,
//! contention levels, and seeds.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use flashsim::{value, BackendKind, Key, NandConfig};
use milana::client::TxnOpts;
use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana::msg::TxnError;
use proptest::prelude::*;
use simkit::Sim;
use timesync::{ClockSpec, Discipline};

fn enc(n: u64) -> flashsim::Value {
    value(Vec::from(n.to_be_bytes()))
}

fn dec(v: &[u8]) -> u64 {
    u64::from_be_bytes(v[..8].try_into().expect("counter value"))
}

#[derive(Debug, Clone)]
struct Shape {
    shards: u32,
    clients: u32,
    keys: u64,
    txns_per_client: u32,
    discipline: Discipline,
    backend: BackendKind,
    seed: u64,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        1u32..4,
        1u32..5,
        1u64..8,
        1u32..12,
        0u8..3,
        0u8..3,
        0u64..10_000,
    )
        .prop_map(|(shards, clients, keys, txns, disc, backend, seed)| Shape {
            shards,
            clients,
            keys,
            txns_per_client: txns,
            discipline: match disc {
                0 => Discipline::Perfect,
                1 => Discipline::PtpSoftware,
                _ => Discipline::Ntp,
            },
            backend: match backend {
                0 => BackendKind::Dram,
                1 => BackendKind::Mftl,
                _ => BackendKind::Vftl,
            },
            seed,
        })
}

fn run_counters(shape: Shape) -> Result<(), TestCaseError> {
    let mut sim = Sim::new(shape.seed);
    let h = sim.handle();
    let cluster = MilanaCluster::build(
        &h,
        MilanaClusterConfig {
            shards: shape.shards,
            replicas: 3,
            clients: shape.clients,
            backend: shape.backend,
            nand: NandConfig {
                channels: 4,
                queue_depth: 64,
                ..NandConfig::default()
            }
            .sized_for(2_000, 512, 0.10),
            clock: ClockSpec::from(shape.discipline.clone()),
            preload_keys: 0,
            ..MilanaClusterConfig::default()
        },
    );
    let committed_writes: Rc<RefCell<Vec<u64>>> =
        Rc::new(RefCell::new(vec![0; shape.keys as usize]));
    let hh = h.clone();
    let keys = shape.keys;
    let txns = shape.txns_per_client;
    let clients = cluster.clients.clone();
    sim.block_on(async move {
        // Seed the counters from one transaction.
        {
            let mut t = clients[0].begin_with(TxnOpts::default());
            for k in 0..keys {
                t.put(Key::from(k), enc(0));
            }
            t.commit().await.expect("seed commit");
            hh.sleep(Duration::from_millis(5)).await;
        }
        let mut joins = Vec::new();
        for c in &clients {
            let c = c.clone();
            let writes = committed_writes.clone();
            let hh2 = hh.clone();
            joins.push(hh.spawn(async move {
                let mut rng = hh2.fork_rng();
                for _ in 0..txns {
                    let key_id = rand::Rng::gen_range(&mut rng, 0..keys);
                    let key = Key::from(key_id);
                    // Bounded retries: contention may abort us repeatedly.
                    for _ in 0..64 {
                        let mut t = c.begin_with(TxnOpts::default());
                        let n = match t.get(&key).await {
                            Ok(v) => dec(&v),
                            Err(_) => continue,
                        };
                        t.put(key.clone(), enc(n + 1));
                        match t.commit().await {
                            Ok(_) => {
                                writes.borrow_mut()[key_id as usize] += 1;
                                break;
                            }
                            Err(TxnError::Aborted(_)) => continue,
                            Err(_) => break, // unknown outcome: do not count
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.await;
        }
        hh.sleep(Duration::from_millis(10)).await;
        // Audit every counter from a consistent snapshot.
        let finals: Vec<u64> = loop {
            let mut t = clients[0].begin_with(TxnOpts::default());
            let mut vals = Vec::new();
            let mut retry = false;
            for k in 0..keys {
                match t.get(&Key::from(k)).await {
                    Ok(v) => vals.push(dec(&v)),
                    Err(_) => {
                        retry = true;
                        break;
                    }
                }
            }
            if retry {
                continue;
            }
            match t.commit().await {
                Ok(_) => break vals,
                Err(TxnError::Aborted(_)) => continue,
                Err(e) => panic!("audit: {e}"),
            }
        };
        let acked = committed_writes.borrow().clone();
        for k in 0..keys as usize {
            // Every acknowledged commit is durable; "unknown outcome"
            // transactions were never counted, so the counter can only
            // exceed the acknowledged tally by those unknowns — which we
            // eliminated by not counting them AND bounding to equality when
            // no unknowns occurred. Lost updates show up as final < acked.
            assert!(
                finals[k] >= acked[k],
                "key {k}: lost update (final {} < acked {})",
                finals[k],
                acked[k]
            );
        }
    });
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    #[test]
    fn committed_increments_are_never_lost(shape in shape_strategy()) {
        run_counters(shape)?;
    }
}

/// Deterministic heavy case: maximum contention (1 key), NTP skew, flash.
#[test]
fn hot_counter_under_ntp_is_exact() {
    run_counters(Shape {
        shards: 1,
        clients: 4,
        keys: 1,
        txns_per_client: 12,
        discipline: Discipline::Ntp,
        backend: BackendKind::Mftl,
        seed: 4242,
    })
    .unwrap();
}
