//! Epoch-fenced routing across a map change: a client holding a stale
//! private map must be fenced with `StaleEpoch` / `Moved`, refetch the map
//! from the master, and retry — without ever duplicating a committed
//! write.

use std::time::Duration;

use flashsim::{value, Key, NandConfig, Value};
use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana::{AbortReason, TxnError, TxnOpts};
use semel::shard::ShardId;
use simkit::Sim;
use timesync::ClockSpec;

fn k(i: u64) -> Key {
    Key::from(i)
}

fn cfg() -> MilanaClusterConfig {
    MilanaClusterConfig {
        shards: 2,
        replicas: 3,
        clients: 2,
        auto_failover: true,
        nand: NandConfig {
            blocks: 128,
            pages_per_block: 8,
            ..NandConfig::default()
        },
        preload_keys: 64,
        clock: ClockSpec::perfect(),
        ..MilanaClusterConfig::default()
    }
}

/// Installs a split of shard 0 directly (the shardkit engine's map edits,
/// without the copy plane): marks the map Migrating, hand-copies every
/// source record to the destination replicas, and flips the cutover in
/// both the master's authoritative map and the servers' shared view.
/// Clients keep their stale private maps — that is the point.
async fn split_behind_clients_backs(cluster: &mut MilanaCluster) -> ShardId {
    let from = ShardId(0);
    let to = ShardId(cluster.map.borrow().len() as u32);
    let dest = cluster.provision_group(to);

    let master = cluster.master.clone().expect("auto_failover master");
    let d = dest.clone();
    cluster.map.borrow_mut().begin_split(from, d.clone());
    master.install_map(move |m| {
        m.begin_split(from, d.clone());
    });

    // Hand-copy the whole source shard to the destination replicas (a
    // superset of the moving keys; the extras are never routed there).
    let src = cluster.primary(from).backend().clone();
    let mut records: Vec<(Key, Value, timesync::Version)> = Vec::new();
    for key in src.keys() {
        for v in src.versions(&key) {
            if let Ok(vv) = src.get_at(&key, v.ts).await {
                if vv.version == v {
                    records.push((key.clone(), vv.value, v));
                }
            }
        }
    }
    for slot in cluster.replicas.last().unwrap() {
        slot.server
            .backend()
            .apply_batch_unordered(records.clone())
            .await
            .expect("dest copy");
    }

    cluster.map.borrow_mut().cutover();
    master.install_map(|m| m.cutover());
    to
}

#[test]
fn stale_client_refetches_and_commits_exactly_once() {
    let mut sim = Sim::new(77);
    let h = sim.handle();
    let mut cluster = MilanaCluster::build(&h, cfg());
    sim.block_on(async move {
        let c = cluster.clients[0].clone();
        // Baseline commit so the moved key has a pre-split version.
        let mut t = c.begin_with(TxnOpts::default());
        let _ = t.get(&k(3)).await.unwrap();
        t.put(k(3), value(&b"pre-split"[..]));
        t.commit().await.unwrap();
        h.sleep(Duration::from_millis(5)).await;

        let to = split_behind_clients_backs(&mut cluster).await;
        let map = cluster.map.borrow().clone();
        let moved_key = (0..64u64)
            .map(k)
            .find(|key| map.shard_for(key) == to)
            .expect("split moved at least one preloaded key");
        let dest_backend = cluster.primary(to).backend().clone();
        let src_backend = {
            // The *old* group of shard 0 still answers at its address.
            let addr = map.group(ShardId(0)).primary;
            cluster
                .replicas
                .iter()
                .flatten()
                .find(|s| s.addr == addr)
                .unwrap()
                .server
                .backend()
                .clone()
        };
        let dest_before = dest_backend.versions(&moved_key).len();
        let src_before = src_backend.versions(&moved_key).len();

        // Blind write with the stale map: the prepare lands on the old
        // primary, which fences it with a definite StaleEpoch no-vote.
        let mut t = c.begin_with(TxnOpts::default());
        t.put(moved_key.clone(), value(&b"post-split"[..]));
        let first = t.commit().await;
        assert_eq!(
            first,
            Err(TxnError::Aborted(AbortReason::StaleEpoch)),
            "stale-map prepare must be fenced"
        );

        // The stale abort triggered a map refetch; the retry must land on
        // the new owner and commit exactly once.
        let mut t = c.begin_with(TxnOpts::default());
        t.put(moved_key.clone(), value(&b"post-split"[..]));
        t.commit().await.expect("retry after refetch");
        h.sleep(Duration::from_millis(10)).await;

        let dest_after = dest_backend.versions(&moved_key).len();
        let src_after = src_backend.versions(&moved_key).len();
        assert_eq!(
            dest_after,
            dest_before + 1,
            "committed write must appear exactly once at the destination"
        );
        assert_eq!(
            src_after, src_before,
            "fenced source must not apply the retried write"
        );

        // Reads through the refreshed map see the new value.
        let mut t = c.begin_with(TxnOpts::default());
        let got = t.get(&moved_key).await.unwrap();
        assert_eq!(got, value(&b"post-split"[..]));
    });
}

#[test]
fn stale_reader_is_redirected_by_moved() {
    let mut sim = Sim::new(78);
    let h = sim.handle();
    let mut cluster = MilanaCluster::build(&h, cfg());
    sim.block_on(async move {
        let to = split_behind_clients_backs(&mut cluster).await;
        let map = cluster.map.borrow().clone();
        let moved_key = (0..64u64)
            .map(k)
            .find(|key| map.shard_for(key) == to)
            .expect("split moved at least one preloaded key");

        // Client 1 never saw the split; its read hits the old primary,
        // draws Moved{epoch}, refetches, and retries transparently.
        let c = cluster.clients[1].clone();
        let fetches_before = cluster
            .config
            .tuning
            .obs
            .registry
            .counter("map_fetches")
            .get();
        let mut t = c.begin_with(TxnOpts::default());
        let got = t.get(&moved_key).await.expect("redirected read");
        assert!(!got.is_empty());
        let fetches_after = cluster
            .config
            .tuning
            .obs
            .registry
            .counter("map_fetches")
            .get();
        assert!(
            fetches_after > fetches_before,
            "Moved redirect must refetch the map from the master"
        );
        h.sleep(Duration::from_millis(1)).await;
    });
}
