//! Regression test: a clock step landing *inside* the 2PC window — after a
//! transaction's reads but before its prepare — must be a definite no-vote
//! when clock health is on, and must never break the client's timestamp
//! monotonicity promise.
//!
//! The forward case is the dangerous one: `ts_commit` is minted at commit
//! time, so a step between the reads and the prepare sends a timestamp far
//! past the server's clock into validation. Without the clock-health fence
//! the prepare would commit a version stamped in the future, poisoning
//! every later read/validate on those keys; with it the server refuses the
//! prepare outright (`AbortReason::ClockSuspect`) and installs nothing.
//!
//! The backward case exercises `SyncedClock`'s monotonic clamp: after a
//! negative step the client's next timestamp still moves forward (one tick
//! past the last issued), so the commit stays above `ts_begin` and inside
//! the server's envelope, and the transaction commits normally.

use std::time::Duration;

use milana_repro::clockkit::ClockHealthConfig;
use milana_repro::flashsim::{value, Key};
use milana_repro::milana::client::TxnOpts;
use milana_repro::milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana_repro::milana::msg::AbortReason;
use milana_repro::milana::server::ServerTuning;
use milana_repro::milana::TxnError;
use milana_repro::semel::shard::ShardId;
use milana_repro::simkit::Sim;
use milana_repro::timesync::ClockSpec;

fn build_cfg() -> MilanaClusterConfig {
    MilanaClusterConfig {
        shards: 1,
        replicas: 3,
        clients: 2,
        // Perfect clocks: the injected step is the only clock error, so
        // the assertions are about the step handling and nothing else.
        clock: ClockSpec::perfect(),
        preload_keys: 16,
        tuning: ServerTuning {
            clock_health: Some(ClockHealthConfig::default()),
            ..ServerTuning::default()
        },
        ..MilanaClusterConfig::default()
    }
}

/// Commits `n` small read-write transactions from `client`, so the
/// server's clock-health track for it is past its warmup window.
async fn warm(cluster: &MilanaCluster, client: usize, n: u64) {
    let c = &cluster.clients[client];
    for i in 0..n {
        let mut t = c.begin_with(TxnOpts::default());
        let key = Key::from(i % 16);
        t.get(&key).await.expect("warm read");
        t.put(key, value(&b"warm"[..]));
        t.commit().await.expect("warm commit");
    }
}

#[test]
fn forward_step_inside_the_prepare_window_is_a_definite_no_vote() {
    let mut sim = Sim::new(7001);
    let h = sim.handle();
    let cluster = MilanaCluster::build(&h, build_cfg());
    sim.block_on(async move {
        warm(&cluster, 0, 12).await;
        warm(&cluster, 1, 12).await;

        // Reads happen on an honest clock; the step lands before the
        // commit, so only `ts_commit` is minted 25ms in the future
        // (far past the 10ms envelope).
        let c = &cluster.clients[0];
        let mut t = c.begin_with(TxnOpts::default());
        let key = Key::from(3u64);
        t.get(&key).await.expect("read before the step");
        c.clock().inject_step(25_000_000);
        t.put(key.clone(), value(&b"stepped"[..]));
        let r = t.commit().await;
        assert!(
            matches!(r, Err(TxnError::Aborted(AbortReason::ClockSuspect))),
            "a +25ms ts_commit must be refused by the clock fence: {r:?}"
        );

        // Definite no-vote: nothing was installed, so an honest client
        // can immediately read and overwrite the same key.
        h.sleep(Duration::from_millis(5)).await;
        let c1 = &cluster.clients[1];
        let mut t = c1.begin_with(TxnOpts::default());
        let got = t.get(&key).await.expect("key must stay readable");
        assert_eq!(&got[..], b"warm", "refused prepare left residue");
        t.put(key, value(&b"honest"[..]));
        t.commit().await.expect("honest client must still commit");

        let s = cluster.primary(ShardId(0)).stats();
        assert!(
            s.clock_suspects > 0,
            "the refusal must be accounted as a suspect"
        );
    });
}

#[test]
fn backward_step_inside_the_prepare_window_keeps_timestamps_monotonic() {
    let mut sim = Sim::new(7002);
    let h = sim.handle();
    let cluster = MilanaCluster::build(&h, build_cfg());
    sim.block_on(async move {
        warm(&cluster, 0, 12).await;

        let c = &cluster.clients[0];
        let mut t = c.begin_with(TxnOpts::default());
        let ts_begin = t.ts_begin();
        let key = Key::from(5u64);
        t.get(&key).await.expect("read before the step");
        c.clock().inject_step(-25_000_000);
        t.put(key, value(&b"rewound"[..]));
        // The monotonic clamp floors the commit stamp just past the last
        // issued timestamp: still above ts_begin, still within the
        // server's envelope — the transaction commits normally.
        let info = t
            .commit()
            .await
            .expect("a rewound clock must not lose the transaction");
        let ts_commit = info.ts_commit.expect("read-write commit carries a stamp");
        assert!(
            ts_commit > ts_begin,
            "monotonicity broken: ts_commit {ts_commit:?} <= ts_begin {ts_begin:?}"
        );

        let s = cluster.primary(ShardId(0)).stats();
        assert_eq!(s.clock_suspects, 0, "no refusal expected on the rewind");
    });
}
