//! Chaos test: repeated primary crashes, promotions, and replica restarts
//! under a continuously running contended workload — the whole §4.5 story
//! (log merge, in-doubt resolution, lease wait, backup catch-up) driven by
//! a faultkit [`FaultPlan`], with conservation invariants audited at the
//! end and the recorded trace checked for serializability.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use milana_repro::faultkit::{run_nemesis, Checker, Fault, FaultPlan, History, TimedFault};
use milana_repro::flashsim::{value, Key, NandConfig};
use milana_repro::milana::client::TxnOpts;
use milana_repro::milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana_repro::milana::msg::TxnError;
use milana_repro::obskit::Obs;
use milana_repro::semel::shard::ShardId;
use milana_repro::simkit::Sim;
use milana_repro::timesync::ClockSpec;

fn enc(n: u64) -> milana_repro::flashsim::Value {
    value(Vec::from(n.to_be_bytes()))
}

fn dec(v: &[u8]) -> u64 {
    u64::from_be_bytes(v[..8].try_into().expect("u64"))
}

/// Three full kill → promote → restart cycles while four clients hammer
/// counters; every acknowledged commit must survive, no phantom increments
/// may appear, and the traced history must stay serializable.
#[test]
fn survives_repeated_failover_cycles() {
    let mut sim = Sim::new(9000);
    let h = sim.handle();
    let obs = Obs::with_trace(1 << 18);
    let mut cluster_cfg = MilanaClusterConfig {
        shards: 1,
        replicas: 3,
        clients: 4,
        nand: NandConfig {
            blocks: 512,
            pages_per_block: 8,
            ..NandConfig::default()
        },
        clock: ClockSpec::ptp_software(),
        preload_keys: 0,
        ..MilanaClusterConfig::default()
    };
    cluster_cfg.tuning.obs = obs.clone();
    cluster_cfg.client_cfg.obs = obs.clone();
    let cluster = Rc::new(RefCell::new(MilanaCluster::build(&h, cluster_cfg)));
    let keys = 8u64;
    let acked = Rc::new(Cell::new(0u64));
    let stop = Rc::new(Cell::new(false));
    let hh = h.clone();
    // Seed.
    {
        let clients = cluster.borrow().clients.clone();
        let hh2 = hh.clone();
        sim.block_on(async move {
            let mut t = clients[0].begin_with(TxnOpts::default());
            for k in 0..keys {
                t.put(Key::from(k), enc(0));
            }
            t.commit().await.unwrap();
            hh2.sleep(Duration::from_millis(5)).await;
        });
    }
    // Workload tasks run across the whole chaos schedule.
    for c in &cluster.borrow().clients {
        let c = c.clone();
        let acked = acked.clone();
        let stop = stop.clone();
        let hh2 = hh.clone();
        hh.spawn(async move {
            let mut rng = hh2.fork_rng();
            while !stop.get() {
                let k = Key::from(rand::Rng::gen_range(&mut rng, 0..keys));
                let mut t = c.begin_with(TxnOpts::default());
                let n = match t.get(&k).await {
                    Ok(v) if v.len() == 8 => dec(&v),
                    _ => {
                        // Primary mid-failover; back off briefly.
                        hh2.sleep(Duration::from_millis(2)).await;
                        continue;
                    }
                };
                t.put(k.clone(), enc(n + 1));
                if t.commit().await.is_ok() {
                    acked.set(acked.get() + 1);
                }
            }
        });
    }
    // Chaos schedule: three crash cycles, each a kill → promote → restart
    // (the nemesis promotes a backup and revives the crashed replica after
    // `restart_after`, so the next cycle always has a quorum).
    let plan = FaultPlan {
        faults: (0..3)
            .map(|_| TimedFault {
                after: Duration::from_millis(40),
                fault: Fault::CrashPrimary {
                    shard: 0,
                    restart_after: Duration::from_millis(20),
                },
            })
            .collect(),
    };
    let report = {
        let hh2 = hh.clone();
        let cluster = cluster.clone();
        sim.block_on(async move { run_nemesis(&hh2, &cluster, &plan).await })
    };
    assert_eq!(report.ok_count(), 3, "all three crash cycles applied");
    assert!(
        cluster.borrow().primary(ShardId(0)).is_primary(),
        "finale leaves a serving primary"
    );
    // Let the workload settle, stop it, and audit.
    sim.block_on({
        let hh2 = hh.clone();
        let stop = stop.clone();
        async move {
            hh2.sleep(Duration::from_millis(80)).await;
            stop.set(true);
            hh2.sleep(Duration::from_millis(60)).await;
        }
    });
    let clients = cluster.borrow().clients.clone();
    let total = sim.block_on(async move {
        loop {
            let mut t = clients[0].begin_with(TxnOpts::default());
            let mut sum = 0u64;
            let mut bad = false;
            for k in 0..keys {
                match t.get(&Key::from(k)).await {
                    Ok(v) if v.len() == 8 => sum += dec(&v),
                    _ => {
                        bad = true;
                        break;
                    }
                }
            }
            if bad {
                continue;
            }
            match t.commit().await {
                Ok(_) => break sum,
                Err(TxnError::Aborted(_)) => continue,
                Err(e) => panic!("audit failed: {e}"),
            }
        }
    });
    let acked = acked.get();
    assert!(
        acked > 20,
        "workload made progress through 3 failovers: {acked}"
    );
    assert!(
        total >= acked,
        "lost acknowledged commits: counters {total} < acked {acked}"
    );
    // Unknown-outcome transactions (client timed out mid-2PC during a crash)
    // may legitimately commit later via CTP without being counted in
    // `acked`; bound them by the clients' reported unknowns.
    let unknowns: u64 = cluster
        .borrow()
        .clients
        .iter()
        .map(|c| c.stats().unknown)
        .sum();
    assert!(
        total <= acked + unknowns + cluster.borrow().clients.len() as u64,
        "phantom increments: counters {total} > acked {acked} + unknowns {unknowns}"
    );
    // The recorded history must be serializable with intact snapshots.
    assert_eq!(obs.tracer.dropped(), 0, "trace ring held the whole run");
    let history = History::from_events(obs.tracer.events(), obs.tracer.dropped());
    let violations = Checker::new(&history).check();
    assert!(
        violations.is_empty(),
        "checker found violations: {violations:#?}"
    );
}
