//! Read-scaling integration tests: backup snapshot reads stay safe when
//! the cluster is anything but quiet.
//!
//! Two properties from the readkit design:
//! - **Watermark monotonicity** — every replica's applied watermark only
//!   ever advances, across primary crashes, promotions, replica restarts,
//!   and client clock steps (the restart path reuses the persistent
//!   transaction table, so not even a revival may rewind it).
//! - **Migration fencing** — a backup snapshot read racing a live
//!   `shardkit` split draws `Moved`/`TooStale` and falls back; it never
//!   returns a torn snapshot. Paired counters updated in one transaction
//!   must read back equal inside any committed read-only scan.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use milana_repro::faultkit::{run_nemesis, Checker, Fault, FaultPlan, History, TimedFault};
use milana_repro::flashsim::{value, Key, NandConfig};
use milana_repro::milana::client::TxnOpts;
use milana_repro::milana::cluster::{MilanaCluster, MilanaClusterConfig, MASTER_NODE};
use milana_repro::obskit::Obs;
use milana_repro::readkit::ReadRoute;
use milana_repro::semel::shard::ShardId;
use milana_repro::shardkit::{RebalanceEngine, RebalancePlan, RebalanceSpec, SourceReplica};
use milana_repro::simkit::Sim;
use milana_repro::timesync::{ClockSpec, Timestamp};

fn enc(n: u64) -> milana_repro::flashsim::Value {
    value(Vec::from(n.to_be_bytes()))
}

fn dec(v: &[u8]) -> u64 {
    u64::from_be_bytes(v[..8].try_into().expect("u64"))
}

fn backup_read_cfg(shards: u32) -> MilanaClusterConfig {
    let mut cfg = MilanaClusterConfig {
        shards,
        replicas: 3,
        clients: 3,
        nand: NandConfig {
            blocks: 512,
            pages_per_block: 8,
            ..NandConfig::default()
        },
        clock: ClockSpec::ptp_software(),
        preload_keys: 0,
        ..MilanaClusterConfig::default()
    };
    cfg.client_cfg.read_route = ReadRoute::Freshest;
    // Fast floor plumbing so backups cover snapshots within a few ms.
    cfg.client_cfg.watermark_interval = Duration::from_millis(2);
    cfg.tuning.gossip_every = Some(Duration::from_millis(2));
    cfg
}

/// Crash/promote/restart the primary twice and step two client clocks
/// (one forward, one back) while a contended workload routes reads to
/// backups; every replica's applied watermark must be non-decreasing at
/// every sample, acked commits must survive, and the trace must stay
/// clean (serializability and `stale_backup_read` included).
#[test]
fn applied_watermarks_survive_failover_and_clock_steps() {
    let mut sim = Sim::new(71_001);
    let h = sim.handle();
    let obs = Obs::with_trace(1 << 18);
    let mut cluster_cfg = backup_read_cfg(1);
    cluster_cfg.tuning.obs = obs.clone();
    cluster_cfg.client_cfg.obs = obs.clone();
    let cluster = Rc::new(RefCell::new(MilanaCluster::build(&h, cluster_cfg)));
    let keys = 8u64;
    let acked = Rc::new(Cell::new(0u64));
    let stop = Rc::new(Cell::new(false));
    let hh = h.clone();
    // Seed.
    {
        let clients = cluster.borrow().clients.clone();
        let hh2 = hh.clone();
        sim.block_on(async move {
            let mut t = clients[0].begin_with(TxnOpts::default());
            for k in 0..keys {
                t.put(Key::from(k), enc(0));
            }
            t.commit().await.unwrap();
            hh2.sleep(Duration::from_millis(5)).await;
        });
    }
    // Watermark sampler: per replica slot, strictly non-decreasing. The
    // restart path reuses the persistent table, so even a crash cycle may
    // not rewind a slot's applied watermark.
    let regressions = Rc::new(Cell::new(0u32));
    {
        let cluster = cluster.clone();
        let stop = stop.clone();
        let regressions = regressions.clone();
        let hh2 = hh.clone();
        hh.spawn(async move {
            let mut last = [Timestamp::ZERO; 3];
            while !stop.get() {
                for (i, slot) in cluster.borrow().replicas[0].iter().enumerate() {
                    let wm = slot.server.table().borrow().applied_watermark();
                    if wm < last[i] {
                        regressions.set(regressions.get() + 1);
                    }
                    last[i] = wm.max(last[i]);
                }
                hh2.sleep(Duration::from_millis(1)).await;
            }
        });
    }
    // Workload: mostly read-only scans that dwell past the floor lag (so
    // backups can cover them), plus counter increments for contention.
    for c in &cluster.borrow().clients {
        let c = c.clone();
        let acked = acked.clone();
        let stop = stop.clone();
        let hh2 = hh.clone();
        hh.spawn(async move {
            let mut rng = hh2.fork_rng();
            while !stop.get() {
                if rand::Rng::gen_range(&mut rng, 0..100u32) < 40 {
                    let mut t = c.begin_with(TxnOpts::default());
                    hh2.sleep(Duration::from_millis(5)).await;
                    let mut fine = true;
                    for k in 0..keys {
                        if t.get(&Key::from(k)).await.is_err() {
                            fine = false;
                            break;
                        }
                    }
                    if fine {
                        let _ = t.commit().await;
                    }
                    continue;
                }
                let k = Key::from(rand::Rng::gen_range(&mut rng, 0..keys));
                let mut t = c.begin_with(TxnOpts::default());
                let n = match t.get(&k).await {
                    Ok(v) if v.len() == 8 => dec(&v),
                    _ => {
                        hh2.sleep(Duration::from_millis(2)).await;
                        continue;
                    }
                };
                t.put(k.clone(), enc(n + 1));
                if t.commit().await.is_ok() {
                    acked.set(acked.get() + 1);
                }
            }
        });
    }
    // Two crash cycles with clock steps in between: forward on client 0,
    // backward on client 1 (the monotonic clamp slews it).
    let plan = FaultPlan {
        faults: vec![
            TimedFault {
                after: Duration::from_millis(40),
                fault: Fault::CrashPrimary {
                    shard: 0,
                    restart_after: Duration::from_millis(20),
                },
            },
            TimedFault {
                after: Duration::from_millis(30),
                fault: Fault::ClockStep {
                    client: 0,
                    delta_ns: 2_000_000,
                },
            },
            TimedFault {
                after: Duration::from_millis(30),
                fault: Fault::CrashPrimary {
                    shard: 0,
                    restart_after: Duration::from_millis(20),
                },
            },
            TimedFault {
                after: Duration::from_millis(30),
                fault: Fault::ClockStep {
                    client: 1,
                    delta_ns: -2_000_000,
                },
            },
        ],
    };
    let report = {
        let hh2 = hh.clone();
        let cluster = cluster.clone();
        sim.block_on(async move { run_nemesis(&hh2, &cluster, &plan).await })
    };
    assert_eq!(report.ok_count(), 4, "all faults applied: {report:?}");
    // Settle, stop, audit.
    sim.block_on({
        let hh2 = hh.clone();
        let stop = stop.clone();
        async move {
            hh2.sleep(Duration::from_millis(80)).await;
            stop.set(true);
            hh2.sleep(Duration::from_millis(60)).await;
        }
    });
    assert_eq!(
        regressions.get(),
        0,
        "applied watermark regressed on a replica"
    );
    let acked = acked.get();
    assert!(acked > 20, "workload made progress: {acked}");
    let replica_reads: u64 = cluster
        .borrow()
        .clients
        .iter()
        .map(|c| c.stats().replica_reads)
        .sum();
    assert!(replica_reads > 0, "no read was ever served by a backup");
    assert_eq!(obs.tracer.dropped(), 0, "trace ring held the whole run");
    let history = History::from_events(obs.tracer.events(), obs.tracer.dropped());
    let violations = Checker::new(&history).check();
    assert!(
        violations.is_empty(),
        "checker found violations: {violations:#?}"
    );
}

/// A live shard split races routed snapshot reads: scans of counter
/// pairs (always updated together in one transaction) must read back
/// equal in every committed read-only scan — a backup serving across the
/// migration fence would tear the pair — and the trace must stay clean.
#[test]
fn backup_reads_during_migration_never_tear_snapshots() {
    let mut sim = Sim::new(71_002);
    let h = sim.handle();
    let obs = Obs::with_trace(1 << 18);
    let mut cluster_cfg = backup_read_cfg(2);
    cluster_cfg.tuning.obs = obs.clone();
    cluster_cfg.client_cfg.obs = obs.clone();
    let cluster = Rc::new(RefCell::new(MilanaCluster::build(&h, cluster_cfg)));
    let pairs = 6u64;
    let stop = Rc::new(Cell::new(false));
    let acked = Rc::new(Cell::new(0u64));
    let torn = Rc::new(Cell::new(0u32));
    let scans = Rc::new(Cell::new(0u64));
    let hh = h.clone();
    // Seed pairs: key k and its shadow k+pairs start equal.
    {
        let clients = cluster.borrow().clients.clone();
        let hh2 = hh.clone();
        sim.block_on(async move {
            let mut t = clients[0].begin_with(TxnOpts::default());
            for k in 0..pairs * 2 {
                t.put(Key::from(k), enc(0));
            }
            t.commit().await.unwrap();
            hh2.sleep(Duration::from_millis(5)).await;
        });
    }
    for (ci, c) in cluster.borrow().clients.iter().enumerate() {
        let c = c.clone();
        let stop = stop.clone();
        let acked = acked.clone();
        let torn = torn.clone();
        let scans = scans.clone();
        let hh2 = hh.clone();
        hh.spawn(async move {
            let mut rng = hh2.fork_rng();
            while !stop.get() {
                if ci == 0 {
                    // Writer: bump one pair atomically.
                    let k = rand::Rng::gen_range(&mut rng, 0..pairs);
                    let mut t = c.begin_with(TxnOpts::default());
                    let n = match t.get(&Key::from(k)).await {
                        Ok(v) if v.len() == 8 => dec(&v),
                        _ => {
                            hh2.sleep(Duration::from_millis(2)).await;
                            continue;
                        }
                    };
                    t.put(Key::from(k), enc(n + 1));
                    t.put(Key::from(k + pairs), enc(n + 1));
                    if t.commit().await.is_ok() {
                        acked.set(acked.get() + 1);
                    }
                } else {
                    // Reader: dwell past the floor lag, then scan pairs.
                    let mut t = c.begin_with(TxnOpts::default());
                    hh2.sleep(Duration::from_millis(5)).await;
                    let mut vals = Vec::with_capacity((pairs * 2) as usize);
                    let mut fine = true;
                    for k in 0..pairs * 2 {
                        match t.get(&Key::from(k)).await {
                            Ok(v) if v.len() == 8 => vals.push(dec(&v)),
                            _ => {
                                fine = false;
                                break;
                            }
                        }
                    }
                    if fine && t.commit().await.is_ok() {
                        scans.set(scans.get() + 1);
                        for k in 0..pairs as usize {
                            if vals[k] != vals[k + pairs as usize] {
                                torn.set(torn.get() + 1);
                            }
                        }
                    }
                }
            }
        });
    }
    // Mid-run, split shard 0 live onto a freshly provisioned group.
    let final_epoch = {
        let hh2 = hh.clone();
        let cluster2 = cluster.clone();
        sim.block_on(async move {
            hh2.sleep(Duration::from_millis(40)).await;
            let (engine, dest, sources) = {
                let mut cl = cluster2.borrow_mut();
                let engine = RebalanceEngine::new(
                    &hh2,
                    MASTER_NODE,
                    cl.map.clone(),
                    cl.master.clone(),
                    RebalanceSpec::default(),
                    cl.config.tuning.obs.clone(),
                );
                let new_shard = ShardId(cl.map.borrow().len() as u32);
                let dest = cl.provision_group(new_shard);
                let sources: Vec<SourceReplica> = cl.replicas[0]
                    .iter()
                    .map(|s| (s.addr, s.server.backend().clone()))
                    .collect();
                (engine, dest, sources)
            };
            let report = engine
                .run(RebalancePlan::Split { from: ShardId(0) }, dest, sources)
                .await;
            report.final_epoch
        })
    };
    assert!(final_epoch >= 1, "split completed with an epoch bump");
    // Keep the load running after cutover, then stop and audit.
    sim.block_on({
        let hh2 = hh.clone();
        let stop = stop.clone();
        async move {
            hh2.sleep(Duration::from_millis(60)).await;
            stop.set(true);
            hh2.sleep(Duration::from_millis(60)).await;
        }
    });
    assert_eq!(torn.get(), 0, "a committed scan saw a torn counter pair");
    assert!(scans.get() > 5, "scans committed: {}", scans.get());
    assert!(acked.get() > 5, "writers made progress: {}", acked.get());
    let replica_reads: u64 = cluster
        .borrow()
        .clients
        .iter()
        .map(|c| c.stats().replica_reads)
        .sum();
    assert!(replica_reads > 0, "no read was ever served by a backup");
    assert_eq!(obs.tracer.dropped(), 0, "trace ring held the whole run");
    let history = History::from_events(obs.tracer.events(), obs.tracer.dropped());
    let violations = Checker::new(&history).check();
    assert!(
        violations.is_empty(),
        "checker found violations: {violations:#?}"
    );
}
