//! Overload soak: an open-loop Retwis workload driven at a fraction or a
//! multiple of a fixed saturation rate against a MILANA cluster with a
//! deliberately small admission gate.
//!
//! What the loadkit plane must deliver (the PR's acceptance bar):
//! - at 0.5x the saturation rate nothing is shed anywhere;
//! - at 2x, goodput stays within 70% of the 1x value (no congestion
//!   collapse) and every arrival terminates accounted — committed,
//!   abandoned, or explicitly shed;
//! - retry traffic is capped by the client token budget;
//! - the whole thing is deterministic per seed.

use std::rc::Rc;
use std::time::Duration;

use milana_repro::flashsim::NandConfig;
use milana_repro::milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana_repro::obskit::{Obs, TxnStats};
use milana_repro::retwis::driver::{run_open_loop, WorkloadConfig};
use milana_repro::retwis::mix::Mix;
use milana_repro::simkit::rng::Zipf;
use milana_repro::simkit::Sim;
use milana_repro::timesync::ClockSpec;

/// Offered load defined as saturating for the cluster below (calibrated
/// once: ~the throughput knee of a 1-shard cluster with admission capacity
/// `CAPACITY`).
const SAT_RATE: f64 = 8_000.0;
/// Cost units the server admits concurrently (gets cost 1, prepares 4).
const CAPACITY: u64 = 16;
/// Virtual-time measurement window.
const WINDOW: Duration = Duration::from_millis(600);
/// Retry-budget parameters mirrored from `loadkit::RetryConfig::default`.
const BUDGET_RATIO: f64 = 0.2;
const BUDGET_BURST: f64 = 10.0;

struct SoakOutcome {
    stats: TxnStats,
    /// Server-side sheds summed over every replica.
    server_sheds: u64,
    /// Client-side retries spent (all clients).
    retries: u64,
    /// Attempts that reached a server (admitted + shed).
    server_attempts: u64,
    /// Registry snapshot for determinism comparison.
    registry_json: String,
}

fn soak(seed: u64, rate: f64) -> SoakOutcome {
    soak_with_capacity(seed, rate, CAPACITY)
}

fn soak_with_capacity(seed: u64, rate: f64, capacity: u64) -> SoakOutcome {
    let mut sim = Sim::new(seed);
    let h = sim.handle();
    let obs = Obs::new();
    let mut cfg = MilanaClusterConfig {
        shards: 1,
        replicas: 3,
        clients: 2,
        preload_keys: 400,
        nand: NandConfig {
            blocks: 512,
            pages_per_block: 8,
            ..NandConfig::default()
        },
        clock: ClockSpec::ptp_software(),
        ..MilanaClusterConfig::default()
    };
    cfg.tuning.obs = obs.clone();
    cfg.tuning.admission.capacity = capacity;
    cfg.client_cfg.obs = obs.clone();
    // `SAT_RATE`/`CAPACITY` were calibrated against the unbatched RPC
    // plane; group commit trades latency for envelope efficiency and gets
    // its own overload coverage in `tests/batching.rs`. Pin batch_max=1 so
    // this suite keeps measuring the admission gate, not the flush window.
    cfg.client_cfg.batch = milana_repro::batchkit::BatchConfig::unbatched();
    cfg.tuning.batch = milana_repro::batchkit::BatchConfig::unbatched();
    let cluster = MilanaCluster::build(&h, cfg);

    let wl = Rc::new(WorkloadConfig {
        mix: Mix::retwis(),
        keyspace: 400,
        zipf_alpha: 0.3,
        value_size: 64,
        // Overloaded/validation aborts retry a few times, then the arrival
        // is abandoned — keeps termination accounting crisp under 2x load.
        max_retries: 6,
    });
    let zipf = Rc::new(Zipf::new(wl.keyspace as usize, wl.zipf_alpha));
    let stats = TxnStats::new();
    let until = h.now() + WINDOW;
    let n_clients = cluster.clients.len();
    let mut joins = Vec::new();
    for c in &cluster.clients {
        joins.push(h.spawn(run_open_loop(
            h.clone(),
            c.clone(),
            wl.clone(),
            zipf.clone(),
            stats.clone(),
            rate / n_clients as f64,
            128,
            until,
        )));
    }
    sim.block_on(async move {
        for j in joins {
            j.await;
        }
    });

    let reg = &obs.registry;
    let mut server_sheds = 0;
    let mut server_attempts = 0;
    for slot in cluster.replicas.iter().flatten() {
        let node = slot.addr.node.0;
        let overload = reg.counter(&format!("loadkit.node{node}.sheds_overload"));
        let deadline = reg.counter(&format!("loadkit.node{node}.sheds_deadline"));
        let admitted = reg.counter(&format!("loadkit.node{node}.admitted"));
        server_sheds += overload.get() + deadline.get();
        server_attempts += admitted.get() + overload.get() + deadline.get();
    }
    let mut retries = 0;
    for c in &cluster.clients {
        retries += reg
            .counter(&format!("loadkit.client{}.retries", c.id().0))
            .get();
    }
    SoakOutcome {
        stats,
        server_sheds,
        retries,
        server_attempts,
        registry_json: reg.snapshot().to_string(),
    }
}

fn goodput(o: &SoakOutcome) -> f64 {
    o.stats.commits.get() as f64 / WINDOW.as_secs_f64()
}

/// Not a test: prints the goodput/shed curve across load multipliers for
/// re-calibrating `SAT_RATE`/`CAPACITY` after tuning changes. Run with
/// `cargo test --release --test overload -- --ignored --nocapture calibrate`.
#[test]
#[ignore]
fn calibrate() {
    for seed in [901u64, 902, 903] {
        for mult in [0.5, 1.0, 1.5, 2.0, 4.0] {
            let o = soak(seed, mult * SAT_RATE);
            println!(
                "seed {seed} rate {:>7.0}/s: goodput {:>6.0}/s arrivals {:>6} commits {:>6} abandoned {:>4} drv_sheds {:>5} srv_sheds {:>6} retries {:>5} attempts {:>6}",
                mult * SAT_RATE,
                goodput(&o),
                o.stats.arrivals.get(),
                o.stats.commits.get(),
                o.stats.abandoned.get(),
                o.stats.sheds.get(),
                o.server_sheds,
                o.retries,
                o.server_attempts,
            );
        }
    }
}

#[test]
fn below_saturation_nothing_is_shed() {
    let o = soak(901, 0.5 * SAT_RATE);
    assert!(
        o.stats.commits.get() > 0,
        "no commits at 0.5x: {:?}",
        o.stats
    );
    assert_eq!(o.server_sheds, 0, "server shed below saturation");
    assert_eq!(o.stats.sheds.get(), 0, "driver shed below saturation");
    assert_eq!(o.stats.abandoned.get(), 0, "abandoned below saturation");
}

#[test]
fn saturation_soak_holds_goodput_and_accounts_every_arrival() {
    let at_1x = soak(902, SAT_RATE);
    let at_2x = soak(902, 2.0 * SAT_RATE);

    // Overload is real: the gate actually refused work at 2x.
    assert!(
        at_2x.server_sheds > 0,
        "2x never hit the admission gate; rate too low for CAPACITY"
    );

    // No congestion collapse: goodput within the acceptance band.
    let (g1, g2) = (goodput(&at_1x), goodput(&at_2x));
    assert!(
        g2 >= 0.70 * g1,
        "goodput collapsed under overload: 1x {g1:.0}/s vs 2x {g2:.0}/s"
    );

    // Full termination accounting: every arrival is a commit, an abandon,
    // or an explicit driver-side shed.
    let s = &at_2x.stats;
    assert_eq!(
        s.arrivals.get(),
        s.commits.get() + s.abandoned.get() + s.sheds.get(),
        "arrivals unaccounted: {s:?}"
    );

    // The retry budget caps retry traffic at a fixed fraction of
    // first-attempt traffic (plus the initial per-client burst).
    let first_attempts = at_2x.server_attempts.saturating_sub(at_2x.retries);
    let cap = 2.0 * BUDGET_BURST + BUDGET_RATIO * first_attempts as f64;
    assert!(
        (at_2x.retries as f64) <= cap + 1.0,
        "retries {} exceed budget cap {cap:.1}",
        at_2x.retries
    );
}

#[test]
fn soak_is_deterministic_per_seed() {
    let a = soak(903, 1.5 * SAT_RATE);
    let b = soak(903, 1.5 * SAT_RATE);
    assert_eq!(a.registry_json, b.registry_json);
    assert_eq!(a.stats.commits.get(), b.stats.commits.get());
    assert_eq!(a.stats.sheds.get(), b.stats.sheds.get());
    assert_eq!(a.server_sheds, b.server_sheds);
}
