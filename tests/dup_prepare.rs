//! Regression test: a duplicated `Prepare` (at-least-once delivery) must
//! not be answered from the transaction table while the original
//! prepare's replication is still in flight.
//!
//! The record is installed as `Prepared` *before* replication completes,
//! so the retransmission fast-path would vote SUCCESS for a prepare that
//! may yet fail replication and abort — the coordinator could then commit
//! a transaction recorded on no backup, which a primary crash erases (a
//! lost acknowledged write). The chaos campaign found exactly this under
//! network duplication faults; the server now stays silent on duplicates
//! until the replication quorum settles.

use std::time::Duration;

use milana_repro::flashsim::{value, Key, NandConfig};
use milana_repro::milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana_repro::milana::msg::{TxnId, TxnRequest, TxnResponse, TxnStatus};
use milana_repro::semel::shard::ShardId;
use milana_repro::simkit::net::NodeId;
use milana_repro::simkit::rpc::{RpcClient, RpcError};
use milana_repro::simkit::Sim;
use milana_repro::timesync::{ClientId, ClockSpec, Timestamp};

#[test]
fn duplicate_prepare_mid_replication_gets_no_early_vote() {
    let mut sim = Sim::new(4242);
    let h = sim.handle();
    let cluster = MilanaCluster::build(
        &h,
        MilanaClusterConfig {
            shards: 1,
            replicas: 3,
            clients: 0,
            nand: NandConfig {
                blocks: 256,
                pages_per_block: 8,
                ..NandConfig::default()
            },
            clock: ClockSpec::ptp_software(),
            preload_keys: 0,
            ..MilanaClusterConfig::default()
        },
    );
    let primary = cluster.map.borrow().group(ShardId(0)).primary;
    let backups: Vec<NodeId> = cluster.replicas[0]
        .iter()
        .map(|slot| slot.addr.node)
        .filter(|&n| n != primary.node)
        .collect();
    assert_eq!(backups.len(), 2);

    // A bare RPC endpoint standing in for a (retransmitting) coordinator.
    let coordinator = RpcClient::new(&h, NodeId(30_000), 9);
    let txid = TxnId {
        client: ClientId(99),
        seq: 1,
    };
    let epoch = cluster.map.borrow().epoch();
    let prepare = move |ts_commit: Timestamp| TxnRequest::Prepare {
        txid,
        ts_commit,
        reads: Vec::new().into(),
        writes: vec![(Key::from(0u64), value(b"v".to_vec()))].into(),
        participants: vec![ShardId(0)].into(),
        epoch,
    };

    // Stall replication: the primary cannot reach its backups, so the
    // original prepare sits in its replication await for `repl_timeout`.
    h.partition(&[primary.node], &backups);

    let (first, duplicate) = {
        let h2 = h.clone();
        let coordinator = coordinator.clone();
        sim.block_on(async move {
            let ts_commit = Timestamp::from_sim(h2.now());
            let coordinator2 = coordinator.clone();
            let original = h2.spawn(async move {
                coordinator2
                    .call::<TxnRequest, TxnResponse>(
                        primary,
                        prepare(ts_commit),
                        Duration::from_millis(200),
                    )
                    .await
            });
            // Let the original arrive and enter replication first.
            h2.sleep(Duration::from_millis(2)).await;
            let dup = coordinator
                .call::<TxnRequest, TxnResponse>(
                    primary,
                    prepare(ts_commit),
                    Duration::from_millis(5),
                )
                .await;
            (original.await, dup)
        })
    };

    // The duplicate must get silence (timeout), NOT an early Vote{ok}
    // leaked from the table's still-undurable Prepared record.
    assert!(
        matches!(duplicate, Err(RpcError::Timeout)),
        "duplicate prepare answered mid-replication: {duplicate:?}"
    );
    // The original resolves only after replication fails, voting abort.
    assert!(
        matches!(first, Ok(TxnResponse::Vote { ok: false })),
        "unreplicated prepare must vote abort: {first:?}"
    );
    assert_eq!(
        cluster.primary(ShardId(0)).table().borrow().status(txid),
        Some(TxnStatus::Aborted),
        "prepare that never reached a backup is aborted"
    );

    // After the decision, a retransmission is answered from the table.
    h.heal_partitions();
    let late = {
        let h2 = h.clone();
        sim.block_on(async move {
            let ts_commit = Timestamp::from_sim(h2.now());
            coordinator
                .call::<TxnRequest, TxnResponse>(
                    primary,
                    prepare(ts_commit),
                    Duration::from_millis(50),
                )
                .await
        })
    };
    assert!(
        matches!(late, Ok(TxnResponse::Vote { ok: false })),
        "post-decision retransmission answered from the table: {late:?}"
    );
}
