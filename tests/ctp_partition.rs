//! Cooperative termination under partitions: a client that vanishes
//! mid-2PC leaves prepared records behind, and after the partition heals
//! the participants must converge on the *same* decision (§4.5).
//!
//! Two scenarios:
//! - The prepare never reached the second shard → the coordinator shard's
//!   CTP query sees a missing prepare and aborts everywhere.
//! - Both shards prepared but the votes (and the outcome) were lost → CTP
//!   sees unanimous prepares and commits everywhere.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use milana_repro::flashsim::{value, Key, NandConfig};
use milana_repro::milana::client::TxnOpts;
use milana_repro::milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana_repro::milana::msg::{TxnId, TxnStatus};
use milana_repro::semel::shard::ShardId;
use milana_repro::simkit::net::NodeId;
use milana_repro::simkit::Sim;
use milana_repro::timesync::ClockSpec;

fn enc(n: u64) -> milana_repro::flashsim::Value {
    value(Vec::from(n.to_be_bytes()))
}

fn dec(v: &[u8]) -> u64 {
    u64::from_be_bytes(v[..8].try_into().expect("u64"))
}

/// Clients occupy nodes `10_000 + i` in the cluster harness.
const CLIENT0: NodeId = NodeId(10_000);

fn build(sim: &Sim) -> MilanaCluster {
    MilanaCluster::build(
        &sim.handle(),
        MilanaClusterConfig {
            shards: 2,
            replicas: 3,
            clients: 1,
            nand: NandConfig {
                blocks: 512,
                pages_per_block: 8,
                ..NandConfig::default()
            },
            clock: ClockSpec::ptp_software(),
            preload_keys: 0,
            ..MilanaClusterConfig::default()
        },
    )
}

/// Two keys owned by different shards, the first on the lower shard id —
/// the designated CTP coordinator (participants sort ascending).
fn cross_shard_keys(cluster: &MilanaCluster) -> (Key, Key) {
    let map = cluster.map.borrow();
    let mut low = None;
    let mut high = None;
    for k in 0u64.. {
        let key = Key::from(k);
        let s = map.shard_for(&key);
        if s == ShardId(0) && low.is_none() {
            low = Some(key);
        } else if s == ShardId(1) && high.is_none() {
            high = Some(key);
        }
        if let (Some(low), Some(high)) = (low.clone(), high.clone()) {
            return (low, high);
        }
    }
    unreachable!("ring maps keys to both shards");
}

/// The single prepared transaction sitting in a primary's table.
fn stuck_txid(cluster: &MilanaCluster, shard: ShardId) -> TxnId {
    let table = cluster.primary(shard).table().borrow();
    let stuck: Vec<TxnId> = table
        .all_records()
        .into_iter()
        .filter(|r| r.status == TxnStatus::Prepared)
        .map(|r| r.txid)
        .collect();
    assert_eq!(stuck.len(), 1, "exactly one prepared txn on {shard:?}");
    stuck[0]
}

fn status_of(cluster: &MilanaCluster, shard: ShardId, txid: TxnId) -> Option<TxnStatus> {
    cluster.primary(shard).table().borrow().status(txid)
}

/// Partition the client from shard 1's primary before a cross-shard
/// commit: shard 0 prepares, shard 1 never hears about the transaction,
/// and the client gives up with an unknown outcome. After the heal, shard
/// 0's CTP query finds no prepare on shard 1 and must abort — on both
/// sides, leaving the old values visible.
#[test]
fn missing_prepare_aborts_consistently_after_heal() {
    let mut sim = Sim::new(7100);
    let h = sim.handle();
    let cluster = build(&sim);
    let (ka, kb) = cross_shard_keys(&cluster);
    let client = cluster.clients[0].clone();

    // Seed both keys.
    {
        let client = client.clone();
        let (ka, kb) = (ka.clone(), kb.clone());
        let hh = h.clone();
        sim.block_on(async move {
            let mut t = client.begin_with(TxnOpts::default());
            t.put(ka, enc(1));
            t.put(kb, enc(1));
            t.commit().await.expect("seed commit");
            hh.sleep(Duration::from_millis(5)).await;
        });
    }

    // Cut the client off from shard 1's primary, then attempt the commit.
    let s1_primary = cluster.map.borrow().group(ShardId(1)).primary.node;
    h.partition(&[CLIENT0], &[s1_primary]);
    let outcome = Rc::new(Cell::new(None));
    {
        let client = client.clone();
        let (ka, kb) = (ka.clone(), kb.clone());
        let outcome = outcome.clone();
        let hh = h.clone();
        sim.block_on(async move {
            let mut t = client.begin_with(TxnOpts::default());
            t.put(ka, enc(2));
            t.put(kb, enc(2));
            outcome.set(Some(t.commit().await.is_ok()));
            hh.sleep(Duration::from_millis(10)).await;
        });
    }
    assert_eq!(
        outcome.get(),
        Some(false),
        "client cannot learn the outcome"
    );
    let txid = stuck_txid(&cluster, ShardId(0));
    assert_eq!(
        status_of(&cluster, ShardId(1), txid),
        None,
        "shard 1 never saw the prepare"
    );

    // Heal, then wait out the CTP threshold plus a scan period.
    h.heal_partitions();
    sim.block_on({
        let hh = h.clone();
        async move { hh.sleep(Duration::from_millis(900)).await }
    });

    // Both sides agree: aborted (shard 1 at most learned the abort).
    assert_eq!(
        status_of(&cluster, ShardId(0), txid),
        Some(TxnStatus::Aborted)
    );
    assert_ne!(
        status_of(&cluster, ShardId(1), txid),
        Some(TxnStatus::Committed)
    );
    assert!(
        cluster.primary(ShardId(0)).stats().ctp_resolutions >= 1,
        "shard 0 resolved the stuck prepare cooperatively"
    );

    // The aborted write must not be visible anywhere.
    let total = sim.block_on(async move {
        let mut t = client.begin_with(TxnOpts::default());
        let a = dec(&t.get(&ka).await.expect("read ka"));
        let b = dec(&t.get(&kb).await.expect("read kb"));
        t.commit().await.expect("read-only commit");
        (a, b)
    });
    assert_eq!(total, (1, 1), "aborted cross-shard write stayed invisible");
}

/// Partition the client from the whole cluster *after* its prepares are
/// in flight: both shards install and replicate the prepare, but the
/// votes — and any outcome — die on the wire. After the heal, CTP sees
/// unanimous prepares and must commit on both sides (the coordinator's
/// only possible decision was commit), making the writes visible even
/// though the client itself never learned the outcome.
#[test]
fn lost_votes_commit_consistently_after_heal() {
    let mut sim = Sim::new(7200);
    let h = sim.handle();
    let cluster = build(&sim);
    let (ka, kb) = cross_shard_keys(&cluster);
    let client = cluster.clients[0].clone();

    // Seed both keys.
    {
        let client = client.clone();
        let (ka, kb) = (ka.clone(), kb.clone());
        let hh = h.clone();
        sim.block_on(async move {
            let mut t = client.begin_with(TxnOpts::default());
            t.put(ka, enc(1));
            t.put(kb, enc(1));
            t.commit().await.expect("seed commit");
            hh.sleep(Duration::from_millis(5)).await;
        });
    }

    // Launch the commit, then isolate the client after the prepare
    // envelopes flush (the coordinator plane holds them for up to
    // `batch_deadline` = 100µs) but before the votes come back — the
    // vote waits out the primary's own replication flush window, so it
    // is sent no earlier than ~225µs in (dropped at submission).
    let outcome = Rc::new(Cell::new(None));
    {
        let client = client.clone();
        let (ka, kb) = (ka.clone(), kb.clone());
        let outcome = outcome.clone();
        let all_nodes: Vec<NodeId> = cluster
            .replicas
            .iter()
            .flatten()
            .map(|slot| slot.addr.node)
            .collect();
        let hh = h.clone();
        h.spawn(async move {
            let mut t = client.begin_with(TxnOpts::default());
            t.put(ka, enc(2));
            t.put(kb, enc(2));
            outcome.set(Some(t.commit().await.is_ok()));
        });
        sim.block_on(async move {
            hh.sleep(Duration::from_micros(160)).await;
            hh.partition(&[CLIENT0], &all_nodes);
            // Let the client time out and both shards settle.
            hh.sleep(Duration::from_millis(100)).await;
        });
    }
    assert_eq!(
        outcome.get(),
        Some(false),
        "client cannot learn the outcome"
    );
    let txid = stuck_txid(&cluster, ShardId(0));
    assert_eq!(
        stuck_txid(&cluster, ShardId(1)),
        txid,
        "same txn on both shards"
    );

    // Heal, then wait out the CTP threshold plus a scan period.
    h.heal_partitions();
    sim.block_on({
        let hh = h.clone();
        async move { hh.sleep(Duration::from_millis(900)).await }
    });

    // Both sides agree: committed.
    assert_eq!(
        status_of(&cluster, ShardId(0), txid),
        Some(TxnStatus::Committed)
    );
    assert_eq!(
        status_of(&cluster, ShardId(1), txid),
        Some(TxnStatus::Committed)
    );
    assert!(
        cluster.primary(ShardId(0)).stats().ctp_resolutions >= 1,
        "shard 0 resolved the stuck prepare cooperatively"
    );

    // The CTP-committed write is visible on both shards.
    let total = sim.block_on(async move {
        let mut t = client.begin_with(TxnOpts::default());
        let a = dec(&t.get(&ka).await.expect("read ka"));
        let b = dec(&t.get(&kb).await.expect("read kb"));
        t.commit().await.expect("read-only commit");
        (a, b)
    });
    assert_eq!(total, (2, 2), "CTP-committed cross-shard write is visible");
}
