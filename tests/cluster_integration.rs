//! Cross-crate integration tests: whole-cluster behaviors spanning the
//! simulator, clock models, flash backends, SEMEL replication, and MILANA
//! transactions.

use std::time::Duration;

use milana_repro::flashsim::{value, BackendKind, Key, NandConfig};
use milana_repro::milana::client::TxnOpts;
use milana_repro::milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana_repro::milana::msg::TxnError;
use milana_repro::semel::shard::ShardId;
use milana_repro::simkit::Sim;
use milana_repro::timesync::{ClockSpec, Discipline};

fn nand() -> NandConfig {
    NandConfig {
        blocks: 256,
        pages_per_block: 8,
        ..NandConfig::default()
    }
}

fn cfg() -> MilanaClusterConfig {
    MilanaClusterConfig {
        shards: 3,
        replicas: 3,
        clients: 4,
        nand: nand(),
        preload_keys: 500,
        clock: ClockSpec::ptp_software(),
        ..MilanaClusterConfig::default()
    }
}

/// A bank-transfer workload where the global balance is invariant: any
/// violation means a serializability or atomicity bug across the stack.
#[test]
fn bank_transfers_conserve_money_across_shards() {
    let mut sim = Sim::new(501);
    let h = sim.handle();
    let cluster = MilanaCluster::build(&h, cfg());
    let hh = h.clone();
    sim.block_on(async move {
        let accounts = 20u64;
        let initial = 1000u64;
        // Seed accounts.
        {
            let mut t = cluster.clients[0].begin_with(TxnOpts::default());
            for a in 0..accounts {
                t.put(Key::from(a), value(Vec::from(initial.to_be_bytes())));
            }
            t.commit().await.unwrap();
            hh.sleep(Duration::from_millis(5)).await;
        }
        // Concurrent transfers.
        let mut joins = Vec::new();
        for w in 0..cluster.clients.len() {
            let c = cluster.clients[w].clone();
            let hh2 = hh.clone();
            joins.push(hh.spawn(async move {
                let mut rng = hh2.fork_rng();
                for _ in 0..40 {
                    let from = rand::Rng::gen_range(&mut rng, 0..accounts);
                    let to =
                        (from + 1 + rand::Rng::gen_range(&mut rng, 0..accounts - 1)) % accounts;
                    let amt = rand::Rng::gen_range(&mut rng, 1..50u64);
                    loop {
                        let mut t = c.begin_with(TxnOpts::default());
                        let bf = match t.get(&Key::from(from)).await {
                            Ok(v) => u64::from_be_bytes(v[..8].try_into().unwrap()),
                            Err(_) => break,
                        };
                        let bt = match t.get(&Key::from(to)).await {
                            Ok(v) => u64::from_be_bytes(v[..8].try_into().unwrap()),
                            Err(_) => break,
                        };
                        if bf < amt {
                            break;
                        }
                        t.put(Key::from(from), value(Vec::from((bf - amt).to_be_bytes())));
                        t.put(Key::from(to), value(Vec::from((bt + amt).to_be_bytes())));
                        match t.commit().await {
                            Ok(_) => break,
                            Err(TxnError::Aborted(_)) => continue,
                            Err(_) => break,
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.await;
        }
        hh.sleep(Duration::from_millis(10)).await;
        // Audit total from a consistent snapshot.
        let total = loop {
            let mut t = cluster.clients[0].begin_with(TxnOpts::default());
            let mut sum = 0u64;
            let mut failed = false;
            for a in 0..accounts {
                match t.get(&Key::from(a)).await {
                    Ok(v) => sum += u64::from_be_bytes(v[..8].try_into().unwrap()),
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                continue;
            }
            match t.commit().await {
                Ok(_) => break sum,
                Err(TxnError::Aborted(_)) => continue,
                Err(e) => panic!("audit failed: {e}"),
            }
        };
        assert_eq!(total, accounts * initial, "money created or destroyed");
    });
}

/// The same workload stays correct under the worst clock discipline and a
/// mid-run primary failover.
#[test]
fn failover_during_contended_workload_preserves_invariants() {
    let mut sim = Sim::new(502);
    let h = sim.handle();
    let mut c = cfg();
    c.shards = 1;
    c.clock = ClockSpec::ntp();
    let cluster = MilanaCluster::build(&h, c);
    let hh = h.clone();
    sim.block_on(async move {
        let counter = Key::from(0u64);
        // Workers increment a counter; each successful commit adds one.
        let commits = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let stop = std::rc::Rc::new(std::cell::Cell::new(false));
        let mut joins = Vec::new();
        for w in 0..cluster.clients.len() {
            let c = cluster.clients[w].clone();
            let key = counter.clone();
            let commits = commits.clone();
            let stop = stop.clone();
            joins.push(hh.spawn(async move {
                while !stop.get() {
                    let mut t = c.begin_with(TxnOpts::default());
                    let n = match t.get(&key).await {
                        Ok(v) if v.len() == 8 => u64::from_be_bytes(v[..8].try_into().unwrap()),
                        Ok(_) => 0,
                        Err(_) => continue,
                    };
                    t.put(key.clone(), value(Vec::from((n + 1).to_be_bytes())));
                    if t.commit().await.is_ok() {
                        commits.set(commits.get() + 1);
                    }
                }
            }));
        }
        // Let them run, then kill and fail over the primary mid-flight.
        hh.sleep(Duration::from_millis(50)).await;
        cluster.fail_primary(ShardId(0));
        cluster.promote_backup(ShardId(0)).await.expect("promotion");
        hh.sleep(Duration::from_millis(120)).await;
        stop.set(true);
        for j in joins {
            j.await;
        }
        hh.sleep(Duration::from_millis(20)).await;
        // Every commit that was acknowledged must be reflected (no lost
        // updates), and no phantom increments may appear. Because a commit's
        // acknowledgement can race the crash, the counter may exceed the
        // *acknowledged* count by at most the number of in-flight
        // transactions — but it must never be lower.
        let final_n = loop {
            let mut t = cluster.clients[0].begin_with(TxnOpts::default());
            match t.get(&counter).await {
                Ok(v) if v.len() == 8 => {
                    if t.commit().await.is_ok() {
                        break u64::from_be_bytes(v[..8].try_into().unwrap());
                    }
                }
                _ => continue,
            }
        };
        assert!(
            final_n >= commits.get(),
            "acknowledged commits lost: counter={} acked={}",
            final_n,
            commits.get()
        );
        assert!(
            final_n <= commits.get() + cluster.clients.len() as u64 + 2,
            "phantom increments: counter={} acked={}",
            final_n,
            commits.get()
        );
        assert!(commits.get() > 0, "workload made progress");
    });
}

/// All four backends sustain the full transactional workload end-to-end.
#[test]
fn every_backend_supports_transactions() {
    for kind in [
        BackendKind::Dram,
        BackendKind::Sftl,
        BackendKind::Vftl,
        BackendKind::Mftl,
    ] {
        let mut sim = Sim::new(503);
        let h = sim.handle();
        let mut c = cfg();
        c.backend = kind;
        c.shards = 1;
        let cluster = MilanaCluster::build(&h, c);
        let hh = h.clone();
        sim.block_on(async move {
            let client = cluster.clients[0].clone();
            for i in 0..10u64 {
                loop {
                    let mut t = client.begin_with(TxnOpts::default());
                    let _ = t.get(&Key::from(i)).await.unwrap();
                    t.put(Key::from(i), value(Vec::from(i.to_be_bytes())));
                    match t.commit().await {
                        Ok(_) => break,
                        Err(TxnError::Aborted(_)) => continue,
                        Err(e) => panic!("{kind:?}: {e}"),
                    }
                }
            }
            hh.sleep(Duration::from_millis(10)).await;
            let mut t = client.begin_with(TxnOpts::default());
            for i in 0..10u64 {
                let v = t.get(&Key::from(i)).await.unwrap();
                assert_eq!(v[..8], i.to_be_bytes(), "{kind:?}");
            }
            let _ = t.commit().await;
        });
    }
}

/// Determinism: identical seeds give byte-identical behavior, different
/// seeds diverge.
#[test]
fn simulations_are_reproducible() {
    let run = |seed: u64| -> (u64, u64, u64) {
        let mut sim = Sim::new(seed);
        let h = sim.handle();
        let cluster = MilanaCluster::build(&h, cfg());
        let clients = cluster.clients.clone();
        let hh = h.clone();
        sim.block_on(async move {
            for i in 0..20u64 {
                let c = &cluster.clients[(i % 4) as usize];
                let mut t = c.begin_with(TxnOpts::default());
                let _ = t.get(&Key::from(i % 7)).await;
                t.put(Key::from(i % 7), value(Vec::from(i.to_be_bytes())));
                let _ = t.commit().await;
            }
            hh.sleep(Duration::from_millis(5)).await;
        });
        let commits: u64 = clients.iter().map(|c| c.stats().commits).sum();
        // Virtual completion time is sensitive to every sampled latency.
        (commits, h.net_stats().sent, h.now().as_nanos())
    };
    assert_eq!(run(42), run(42), "same seed must reproduce exactly");
    assert_ne!(
        run(42).2,
        run(43).2,
        "different seeds should perturb event timing"
    );
}

/// NTP's millisecond skew produces measurably more aborts than PTP under
/// the same contended workload — the paper's central claim, end to end.
#[test]
fn ntp_aborts_more_than_ptp() {
    let run = |discipline: Discipline| -> f64 {
        let mut sim = Sim::new(504);
        let h = sim.handle();
        let cluster = MilanaCluster::build(
            &h,
            MilanaClusterConfig {
                shards: 1,
                replicas: 3,
                clients: 6,
                nand: nand(),
                preload_keys: 64, // tiny keyspace: heavy contention
                clock: ClockSpec::from(discipline),
                backend: BackendKind::Dram, // fastest writes: most skew-sensitive
                ..MilanaClusterConfig::default()
            },
        );
        let clients = cluster.clients.clone();
        let hh = h.clone();
        sim.block_on(async move {
            let mut joins = Vec::new();
            for w in 0..cluster.clients.len() {
                let c = cluster.clients[w].clone();
                let hh2 = hh.clone();
                joins.push(hh.spawn(async move {
                    let mut rng = hh2.fork_rng();
                    for _ in 0..150 {
                        let key = Key::from(rand::Rng::gen_range(&mut rng, 0..64u64));
                        let mut t = c.begin_with(TxnOpts::default());
                        if t.get(&key).await.is_err() {
                            continue;
                        }
                        t.put(key, value(&b"x"[..]));
                        let _ = t.commit().await;
                    }
                }));
            }
            for j in joins {
                j.await;
            }
        });
        let (mut commits, mut aborts) = (0u64, 0u64);
        for c in &clients {
            commits += c.stats().commits;
            aborts += c.stats().aborts;
        }
        aborts as f64 / (commits + aborts) as f64
    };
    let ptp = run(Discipline::PtpSoftware);
    let ntp = run(Discipline::Ntp);
    assert!(
        ntp > ptp,
        "NTP abort rate ({ntp:.3}) should exceed PTP ({ptp:.3})"
    );
}
