//! Group-commit batching (batchkit) end-to-end: ack-safety when batch
//! envelopes are partially delivered, the flush-deadline latency bound,
//! per-seed determinism of the metric registry, and the `batch_max = 1`
//! regression that reproduces the unbatched per-record RPC fan-out.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use milana_repro::batchkit::BatchConfig;
use milana_repro::flashsim::{value, Key};
use milana_repro::milana::client::TxnOpts;
use milana_repro::milana::cluster::MilanaCluster;
use milana_repro::obskit::Obs;
use milana_repro::semel::shard::ShardId;
use milana_repro::semel::{ClusterSpec, SemelCluster, SemelError};
use milana_repro::simkit::Sim;

/// Batch envelopes that only partially reach the backup set must never
/// acknowledge an under-replicated write (SEMEL §3.2 with group commit:
/// the whole batch needs `f` backup acks before *any* item is acked).
///
/// Phase A partitions one of the two backups: every envelope is partially
/// delivered, but the surviving backup still provides `f = 1` coverage,
/// so puts succeed — and the surviving backup must hold *every* acked
/// record (whole-batch coverage, not per-record luck). Phase B partitions
/// the second backup too: zero coverage, so no put may be acked.
#[test]
fn partial_batch_delivery_never_acks_under_replicated_writes() {
    let mut sim = Sim::new(9101);
    let h = sim.handle();
    let spec = ClusterSpec::new(1, 3, 1).batching(BatchConfig {
        batch_max: 8,
        batch_deadline: Duration::from_micros(100),
    });
    let cluster = SemelCluster::build(&h, spec.into());
    let hh = h.clone();
    sim.block_on(async move {
        let shard = ShardId(0);
        let primary = cluster.map.borrow().group(shard).primary.node;
        let backup_a = cluster.servers[0][1].config().addr.node;
        let backup_b = cluster.servers[0][2].config().addr.node;

        // Phase A: envelopes reach only backup B; f = 1 is still covered.
        hh.partition(&[primary], &[backup_a]);
        let mut joins = Vec::new();
        for i in 0..8u64 {
            let c = cluster.clients[0].clone();
            joins.push(hh.spawn(async move { (i, c.put(Key::from(i), value(&b"a"[..])).await) }));
        }
        let mut acked = Vec::new();
        for j in joins {
            let (i, r) = j.await;
            acked.push((i, r.expect("one backup covers f = 1")));
        }
        hh.sleep(Duration::from_millis(5)).await;
        for (i, ver) in &acked {
            assert!(
                cluster.servers[0][2]
                    .backend()
                    .versions(&Key::from(*i))
                    .contains(ver),
                "acked write {i} missing from the only backup that could cover it"
            );
        }

        // Phase B: no backup reachable — zero coverage, so the whole
        // batch must fail; a partially-lost envelope is never acked.
        hh.partition(&[primary], &[backup_b]);
        let mut joins = Vec::new();
        for i in 100..108u64 {
            let c = cluster.clients[0].clone();
            joins.push(hh.spawn(async move { (i, c.put(Key::from(i), value(&b"b"[..])).await) }));
        }
        for j in joins {
            let (i, r) = j.await;
            let err = r.expect_err("no backup coverage must not ack");
            assert!(
                matches!(err, SemelError::NoMajority | SemelError::Timeout),
                "put {i}: unexpected error {err:?}"
            );
        }

        // Heal: the plane recovers without manual intervention.
        hh.heal_partitions();
        cluster.clients[0]
            .put(Key::from(200u64), value(&b"c"[..]))
            .await
            .expect("puts succeed again after heal");
    });
}

/// The extra commit latency batching may add is bounded by the flush
/// deadlines on the commit path: one client-side coordinator-plane window
/// plus one primary-side replication window. A huge `batch_max` with
/// sequential (never-full) batches is the worst case — every flush waits
/// out its whole deadline.
#[test]
fn flush_deadline_bounds_commit_latency() {
    const DEADLINE: Duration = Duration::from_micros(200);
    fn median_commit_ns(batch: BatchConfig) -> (u64, Obs) {
        let mut sim = Sim::new(9102);
        let h = sim.handle();
        let obs = Obs::new();
        let spec = ClusterSpec::new(1, 3, 2)
            .batching(batch)
            .observed(obs.clone());
        let cluster = MilanaCluster::build(&h, spec.into());
        let hh = h.clone();
        let lat: Vec<u64> = sim.block_on(async move {
            let lat = Rc::new(RefCell::new(Vec::new()));
            let mut joins = Vec::new();
            for (ci, c) in cluster.clients.iter().enumerate() {
                let c = c.clone();
                let hh2 = hh.clone();
                let lat = lat.clone();
                joins.push(hh.spawn(async move {
                    for i in 0..30u64 {
                        let key = Key::from(ci as u64 * 1000 + i); // disjoint: no conflicts
                        let t0 = hh2.now();
                        let mut t = c.begin_with(TxnOpts::default());
                        t.put(key, value(&b"v"[..]));
                        t.commit().await.expect("conflict-free commit");
                        lat.borrow_mut().push((hh2.now() - t0).as_nanos() as u64);
                    }
                }));
            }
            for j in joins {
                j.await;
            }
            Rc::try_unwrap(lat).unwrap().into_inner()
        });
        assert_eq!(lat.len(), 60);
        let mut lat = lat;
        lat.sort_unstable();
        // Median: robust to the occasional retry (lease/recovery backoff)
        // that also exists on the unbatched path.
        (lat[lat.len() / 2], obs)
    }

    let (base, _) = median_commit_ns(BatchConfig::unbatched());
    let (batched, obs) = median_commit_ns(BatchConfig {
        batch_max: 64,
        batch_deadline: DEADLINE,
    });
    // Commit path crosses two batchers: coordinator plane + replication.
    let bound = base + 2 * DEADLINE.as_nanos() as u64 + 100_000; // 100 µs scheduling slack
    assert!(
        batched <= bound,
        "batched median commit {batched} ns exceeds bound {bound} ns (unbatched {base} ns)"
    );
    // The worst case actually exercised deadline flushes on both planes.
    let reg = &obs.registry;
    assert!(
        reg.counter("batchkit.milana.coord.c0.s0.flush_deadline")
            .get()
            > 0,
        "coordinator plane never deadline-flushed"
    );
    assert!(
        reg.counter("batchkit.milana.repl.node0.flush_deadline")
            .get()
            > 0,
        "replication plane never deadline-flushed"
    );
}

/// Batching is timer-driven but fully deterministic: the same seed must
/// produce byte-identical registry snapshots (batch sizes, flush reasons,
/// RPC counters — everything).
#[test]
fn registry_snapshot_is_byte_identical_per_seed() {
    fn snapshot(seed: u64) -> String {
        let mut sim = Sim::new(seed);
        let h = sim.handle();
        let obs = Obs::new();
        let spec = ClusterSpec::new(2, 3, 2)
            .preloaded(128)
            .batching(BatchConfig::default())
            .observed(obs.clone());
        let cluster = MilanaCluster::build(&h, spec.into());
        let hh = h.clone();
        sim.block_on(async move {
            let mut joins = Vec::new();
            for (ci, c) in cluster.clients.iter().enumerate() {
                let c = c.clone();
                joins.push(hh.spawn(async move {
                    for i in 0..25u64 {
                        let key = Key::from((ci as u64 * 53 + i * 7) % 128);
                        let mut t = c.begin_with(TxnOpts::default());
                        let _ = t.get(&key).await;
                        t.put(key, value(Vec::from(i.to_be_bytes())));
                        let _ = t.commit().await;
                    }
                }));
            }
            for j in joins {
                j.await;
            }
            hh.sleep(Duration::from_millis(5)).await;
        });
        obs.registry.snapshot().to_string()
    }

    let a = snapshot(9103);
    let b = snapshot(9103);
    assert_eq!(a, b, "same seed must reproduce the registry byte for byte");
    assert!(
        a.contains("batchkit.milana.repl.node0.batch_size"),
        "replication batcher metrics missing from snapshot: {a}"
    );
    assert!(
        a.contains("batchkit.milana.coord.c0.s0.batch_size"),
        "coordinator batcher metrics missing from snapshot: {a}"
    );
}

/// `batch_max = 1` reproduces the unbatched wire economy exactly — one
/// replication envelope per backup per record — while a real batch window
/// coalesces the same workload into at least 2x fewer envelopes.
#[test]
fn batch_max_one_reproduces_unbatched_rpc_counts() {
    fn run(batch: BatchConfig) -> (u64, u64, u64) {
        let mut sim = Sim::new(9104);
        let h = sim.handle();
        let obs = Obs::new();
        let spec = ClusterSpec::new(1, 3, 2)
            .batching(batch)
            .observed(obs.clone());
        let cluster = SemelCluster::build(&h, spec.into());
        let hh = h.clone();
        let puts = sim.block_on(async move {
            let mut joins = Vec::new();
            for (ci, c) in cluster.clients.iter().enumerate() {
                for i in 0..30u64 {
                    let c = c.clone();
                    let key = Key::from(ci as u64 * 1000 + i);
                    joins.push(hh.spawn(async move { c.put(key, value(&b"v"[..])).await }));
                }
            }
            let mut ok = 0u64;
            for j in joins {
                j.await.expect("uncontended put");
                ok += 1;
            }
            hh.sleep(Duration::from_millis(5)).await;
            ok
        });
        let reg = &obs.registry;
        let envelopes = reg.counter("semel.node0.repl_envelopes").get();
        let records = reg.counter("semel.node0.repl_records").get();
        (envelopes, records, puts)
    }

    let (env1, rec1, ok1) = run(BatchConfig::unbatched());
    assert_eq!(rec1, ok1, "one replication record per acked put");
    assert_eq!(
        env1,
        rec1 * 2,
        "batch_max = 1 must send one envelope per backup per record"
    );

    let (env16, rec16, ok16) = run(BatchConfig {
        batch_max: 16,
        batch_deadline: Duration::from_micros(100),
    });
    assert_eq!(ok16, ok1, "same workload must ack the same writes");
    assert_eq!(rec16, rec1, "batching must not change what is replicated");
    assert!(
        env16 * 2 <= env1,
        "expected >= 2x envelope reduction: {env1} unbatched vs {env16} batched"
    );
}
