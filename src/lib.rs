//! Umbrella crate for the SEMEL/MILANA reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can write
//! `use milana_repro::milana;`. See the README for a tour and DESIGN.md for
//! the system inventory.

pub use batchkit;
pub use clockkit;
pub use faultkit;
pub use flashsim;
pub use loadkit;
pub use milana;
pub use obskit;
pub use readkit;
pub use retwis;
pub use semel;
pub use shardkit;
pub use simkit;
pub use timesync;
