//! Quickstart: boot a MILANA cluster in the simulator, run a read-write
//! transaction and a locally-validated read-only transaction.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use flashsim::{value, Key, NandConfig};
use milana::client::TxnOpts;
use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana::msg::TxnError;
use simkit::Sim;
use timesync::ClockSpec;

fn main() -> Result<(), TxnError> {
    // A deterministic simulation: same seed, same run — always.
    let mut sim = Sim::new(42);
    let handle = sim.handle();

    // 2 shards x 3 replicas on the paper's flash (MFTL) backend, clients
    // synchronized with PTP software timestamping (~53 us skew).
    let cluster = MilanaCluster::build(
        &handle,
        MilanaClusterConfig {
            shards: 2,
            replicas: 3,
            clients: 2,
            nand: NandConfig {
                blocks: 512,
                ..NandConfig::default()
            },
            clock: ClockSpec::ptp_software(),
            preload_keys: 1_000,
            ..MilanaClusterConfig::default()
        },
    );

    sim.block_on(async move {
        let alice = &cluster.clients[0];
        let bob = &cluster.clients[1];

        // A read-write transaction: read two keys, update one, 2PC commit.
        let mut txn = alice.begin_with(TxnOpts::default());
        let before = txn.get(&Key::from(7u64)).await?;
        println!("alice read key 7: {} bytes", before.len());
        txn.put(Key::from(7u64), value(&b"hello from alice"[..]));
        let info = txn.commit().await?;
        println!(
            "alice committed at ts={} (validated on the shard primary)",
            info.ts_commit.expect("read-write commit")
        );

        // Give the asynchronous commit notification a moment to land (the
        // key stays "prepared" on the primary until then, which would poison
        // a reader's local validation — by design).
        handle.sleep(std::time::Duration::from_millis(5)).await;

        // A read-only transaction from another client: snapshot reads plus
        // a purely client-local commit decision — zero validation messages.
        // Like any OCC application, retry if the snapshot was contended.
        let v = loop {
            let mut ro = bob.begin_with(TxnOpts::default());
            let v = ro.get(&Key::from(7u64)).await?;
            match ro.commit().await {
                Ok(info) => {
                    assert!(info.local, "read-only transactions validate locally");
                    break v;
                }
                Err(TxnError::Aborted(_)) => continue,
                Err(e) => return Err(e),
            }
        };
        println!("bob read key 7: {:?}", std::str::from_utf8(&v).unwrap());
        println!("bob committed locally (no server round trips)");

        println!(
            "client stats: alice={:?} bob={:?}",
            alice.stats(),
            bob.stats()
        );
        Ok(())
    })
}
