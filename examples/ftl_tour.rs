//! A guided tour of the software-defined flash stack, bottom-up — the
//! substrate Contribution 3 is built on. No cluster, no transactions: just
//! the storage layers and their physics.
//!
//! ```sh
//! cargo run --example ftl_tour
//! ```

use std::time::Duration;

use flashsim::dftl::{DemandMappedStore, DftlConfig};
use flashsim::mftl::{MftlConfig, UnifiedStore};
use flashsim::nand::{NandConfig, NandDevice, PhysLoc};
use flashsim::{value, Key};
use simkit::Sim;
use timesync::{ClientId, Timestamp, Version};

fn v(ts: u64) -> Version {
    Version::new(Timestamp(ts), ClientId(1))
}

fn main() {
    let mut sim = Sim::new(1588); // the PTP standard's number, naturally
    let h = sim.handle();
    let hh = h.clone();
    sim.block_on(async move {
        // ------------------------------------------------------------------
        // Layer 0: raw NAND. Pages program once per erase cycle, in order.
        // ------------------------------------------------------------------
        let dev: NandDevice<u32> = NandDevice::new(
            hh.clone(),
            NandConfig {
                blocks: 16,
                pages_per_block: 4,
                channels: 4,
                ..NandConfig::default()
            },
        );
        let b = dev.alloc_block().unwrap();
        let t0 = hh.now();
        dev.program(PhysLoc { block: b, page: 0 }, 0xBEEF).await.unwrap();
        println!(
            "[nand] page program took {:?} (the paper's 100us)",
            hh.now() - t0
        );
        // Overwrite without erase? The device says no — that refusal is what
        // makes old versions free.
        let err = dev.program(PhysLoc { block: b, page: 0 }, 0xDEAD).await.unwrap_err();
        println!("[nand] in-place overwrite rejected: {err}");
        dev.erase(b).await.unwrap();
        println!(
            "[nand] block erased (1ms, wear count now {})",
            dev.erase_count(b)
        );

        // ------------------------------------------------------------------
        // Layer 1: the unified multi-version FTL (MFTL). Keys map straight
        // to flash tuples; versions accumulate by *not* erasing.
        // ------------------------------------------------------------------
        let store = UnifiedStore::new(
            hh.clone(),
            NandConfig {
                blocks: 128,
                pages_per_block: 8,
                channels: 4,
                ..NandConfig::default()
            },
            MftlConfig::default(),
        );
        let k = Key::from(42u64);
        for ts in [100u64, 200, 300] {
            store
                .put(k.clone(), value(format!("v@{ts}").into_bytes()), v(ts))
                .await
                .unwrap();
        }
        println!(
            "[mftl] key {k} now has versions {:?} — remap-on-write kept them all",
            store.versions(&k)
        );
        for at in [150u64, 250, 999] {
            let got = store.get_at(&k, Timestamp(at)).await.unwrap();
            println!(
                "[mftl] snapshot read at t={at}: {:?}",
                std::str::from_utf8(&got.value).unwrap()
            );
        }
        // The watermark: once every client has moved past t=250, history
        // below the youngest version <= 250 is garbage.
        store.set_watermark(Timestamp(250));
        store
            .put(k.clone(), value(&b"v@400"[..]), v(400))
            .await
            .unwrap();
        println!(
            "[mftl] after watermark(250) + one write, versions: {:?} (v@100 pruned)",
            store.versions(&k)
        );

        // ------------------------------------------------------------------
        // Layer 2: what GC actually costs. Hammer overwrites and watch the
        // collector relocate live tuples and erase blocks.
        // ------------------------------------------------------------------
        for round in 1..=30u64 {
            for i in 0..64u64 {
                let ts = 1_000 + round * 100 + i;
                store
                    .put(Key::from(i), value(vec![0u8; 472]), v(ts))
                    .await
                    .unwrap();
            }
            store.set_watermark(Timestamp(1_000 + (round.saturating_sub(1)) * 100 + 64));
        }
        let stats = store.stats();
        let dstats = store.device().stats();
        println!(
            "[gc]   {} puts -> {} pages programmed, {} blocks erased, {} tuples relocated, {} versions pruned",
            stats.puts, dstats.page_writes, dstats.block_erases, stats.gc_relocated, stats.versions_pruned
        );

        // ------------------------------------------------------------------
        // Layer 3: when the mapping table outgrows DRAM (§3.1 future work),
        // page it on demand — hits are free, misses cost a flash read.
        // ------------------------------------------------------------------
        let paged = DemandMappedStore::new(
            hh.clone(),
            store,
            DftlConfig {
                cached_entries: 8,
                ..DftlConfig::default()
            },
        );
        // Touch 8 hot keys twice: second round is all hits.
        for _ in 0..2 {
            for i in 0..8u64 {
                let _ = paged.get_at(&Key::from(i), Timestamp::MAX).await;
            }
        }
        let ds = paged.stats();
        println!(
            "[dftl] 8-entry mapping cache over 64 keys: {} hits / {} misses ({:.0}% hit rate on the hot set)",
            ds.hits,
            ds.misses,
            ds.hit_rate() * 100.0
        );

        hh.sleep(Duration::from_millis(1)).await;
        println!("tour complete at virtual time {}", hh.now());
    });
}
