//! Snapshot analytics: a long-running read-only scan over data that is
//! being rewritten underneath it — the multi-version payoff the paper's
//! §3.1/§4.4 watermark design exists for.
//!
//! A writer fleet continuously updates an order ledger while an analytics
//! transaction takes a leisurely stroll over every key. Because MILANA
//! reads are snapshot reads at `ts_begin`, and because an active
//! transaction holds its client's watermark report below `ts_begin`
//! (so garbage collection spares its versions), the scan totals balance
//! exactly — as if the database had been frozen at the instant it began.
//!
//! ```sh
//! cargo run --example analytics
//! ```

use std::time::Duration;

use flashsim::{value, Key, NandConfig, Value};
use milana::client::TxnOpts;
use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana::msg::TxnError;
use simkit::Sim;
use timesync::ClockSpec;

const ACCOUNTS: u64 = 64;
const TOTAL: u64 = 64_000; // money supply; transfers preserve it

fn key(a: u64) -> Key {
    Key::from(a)
}

fn enc(n: u64) -> Value {
    value(Vec::from(n.to_be_bytes()))
}

fn dec(v: &Value) -> u64 {
    u64::from_be_bytes(v[..8].try_into().expect("u64"))
}

fn main() -> Result<(), TxnError> {
    let mut sim = Sim::new(314);
    let handle = sim.handle();
    let cluster = MilanaCluster::build(
        &handle,
        MilanaClusterConfig {
            shards: 2,
            replicas: 3,
            clients: 4,
            nand: NandConfig {
                blocks: 1024,
                ..NandConfig::default()
            },
            clock: ClockSpec::ptp_software(),
            ..MilanaClusterConfig::default()
        },
    );
    let hh = handle.clone();
    sim.block_on(async move {
        // Seed the ledger: TOTAL spread evenly.
        {
            let mut t = cluster.clients[0].begin_with(TxnOpts::default());
            for a in 0..ACCOUNTS {
                t.put(key(a), enc(TOTAL / ACCOUNTS));
            }
            t.commit().await?;
            hh.sleep(Duration::from_millis(5)).await;
        }

        // Writers shuffle money around, forever.
        let stop = std::rc::Rc::new(std::cell::Cell::new(false));
        let mut writers = Vec::new();
        for w in 1..4usize {
            let c = cluster.clients[w].clone();
            let stop = stop.clone();
            let hh2 = hh.clone();
            writers.push(hh.spawn(async move {
                let mut rng = hh2.fork_rng();
                let mut moved = 0u64;
                while !stop.get() {
                    let from = rand::Rng::gen_range(&mut rng, 0..ACCOUNTS);
                    let to = (from + 1 + rand::Rng::gen_range(&mut rng, 0..ACCOUNTS - 1)) % ACCOUNTS;
                    let mut t = c.begin_with(TxnOpts::default());
                    let (bf, bt) = match (t.get(&key(from)).await, t.get(&key(to)).await) {
                        (Ok(f), Ok(t)) => (dec(&f), dec(&t)),
                        _ => continue,
                    };
                    if bf == 0 {
                        continue;
                    }
                    let amt = 1 + rand::Rng::gen_range(&mut rng, 0..bf.min(50));
                    t.put(key(from), enc(bf - amt));
                    t.put(key(to), enc(bt + amt));
                    if t.commit().await.is_ok() {
                        moved += amt;
                    }
                }
                moved
            }));
        }

        // The analyst opens ONE transaction and scans slowly: 2ms of
        // "think time" per account, ~128ms total, while hundreds of
        // transfers commit underneath.
        let analyst = cluster.clients[0].clone();
        let mut scan = analyst.begin_with(TxnOpts::default());
        println!("analytics scan begins at ts {}", scan.ts_begin());
        let mut sum = 0u64;
        for a in 0..ACCOUNTS {
            sum += dec(&scan.get(&key(a)).await?);
            hh.sleep(Duration::from_millis(2)).await;
        }
        let info = scan.commit().await?;
        assert!(info.local, "read-only scan commits locally");
        println!(
            "scan saw a frozen ledger: total = {sum} (expected {TOTAL}) across {ACCOUNTS} accounts"
        );
        assert_eq!(sum, TOTAL, "snapshot must balance exactly");

        stop.set(true);
        let mut total_moved = 0u64;
        for w in writers {
            total_moved += w.await;
        }
        println!(
            "meanwhile the writers moved {total_moved} units in {} committed transfers-worth of churn",
            cluster.clients[1..]
                .iter()
                .map(|c| c.stats().commits)
                .sum::<u64>()
        );

        // A fresh scan (fast this time) still balances, post-churn.
        let mut verify = cluster.clients[0].begin_with(TxnOpts::default());
        let mut sum2 = 0u64;
        for a in 0..ACCOUNTS {
            sum2 += dec(&verify.get(&key(a)).await?);
        }
        verify.commit().await?;
        assert_eq!(sum2, TOTAL);
        println!("post-churn ledger also balances: {sum2}");
        Ok(())
    })
}
