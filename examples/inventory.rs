//! Inventory / order processing on MILANA: atomic multi-key updates under
//! contention, with an invariant check at the end.
//!
//! Many warehouse workers concurrently reserve stock and record orders.
//! Each order decrements one item's stock and appends to an order counter —
//! atomically across shards. Afterwards we verify conservation: every unit
//! of stock that disappeared is accounted for by exactly one order.
//!
//! ```sh
//! cargo run --example inventory
//! ```

use std::time::Duration;

use flashsim::{value, Key, NandConfig, Value};
use milana::client::{TxnClient, TxnOpts};
use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana::msg::TxnError;
use simkit::Sim;
use timesync::ClockSpec;

const ITEMS: u64 = 8;
const INITIAL_STOCK: u64 = 40;
const WORKERS: u32 = 6;
const ORDERS_PER_WORKER: u32 = 30;

fn stock_key(item: u64) -> Key {
    Key::from(format!("stock:{item}").as_str())
}

fn orders_key(item: u64) -> Key {
    Key::from(format!("orders:{item}").as_str())
}

fn enc(n: u64) -> Value {
    value(Vec::from(n.to_be_bytes()))
}

fn dec(v: &Value) -> u64 {
    u64::from_be_bytes(v[..8].try_into().expect("u64 value"))
}

/// Tries to order one unit of `item`: decrement stock, increment orders.
/// Returns `Ok(false)` when sold out. Retries OCC aborts internally.
async fn order_one(client: &TxnClient, item: u64) -> Result<bool, TxnError> {
    loop {
        let mut txn = client.begin_with(TxnOpts::default());
        let stock = dec(&txn.get(&stock_key(item)).await?);
        if stock == 0 {
            txn.commit().await?; // read-only: local validation
            return Ok(false);
        }
        let orders = dec(&txn.get(&orders_key(item)).await?);
        txn.put(stock_key(item), enc(stock - 1));
        txn.put(orders_key(item), enc(orders + 1));
        match txn.commit().await {
            Ok(_) => return Ok(true),
            Err(TxnError::Aborted(_)) => continue, // lost the race; retry
            Err(e) => return Err(e),
        }
    }
}

fn main() -> Result<(), TxnError> {
    let mut sim = Sim::new(7);
    let handle = sim.handle();
    let cluster = MilanaCluster::build(
        &handle,
        MilanaClusterConfig {
            shards: 2,
            replicas: 3,
            clients: WORKERS,
            nand: NandConfig {
                blocks: 512,
                ..NandConfig::default()
            },
            clock: ClockSpec::ptp_software(),
            ..MilanaClusterConfig::default()
        },
    );
    let hh = handle.clone();
    sim.block_on(async move {
        // Seed the stock, then let the asynchronous commit notification land
        // so the keys leave the prepared state before workers pile in.
        {
            let mut txn = cluster.clients[0].begin_with(TxnOpts::default());
            for item in 0..ITEMS {
                txn.put(stock_key(item), enc(INITIAL_STOCK));
                txn.put(orders_key(item), enc(0));
            }
            txn.commit().await?;
            hh.sleep(Duration::from_millis(5)).await;
        }

        // Workers hammer orders concurrently over hot items.
        let mut joins = Vec::new();
        for w in 0..WORKERS {
            let client = cluster.clients[w as usize].clone();
            let hh2 = hh.clone();
            joins.push(hh.spawn(async move {
                let mut placed = 0u32;
                let mut rng = hh2.fork_rng();
                for _ in 0..ORDERS_PER_WORKER {
                    let item = rand::Rng::gen_range(&mut rng, 0..ITEMS);
                    if order_one(&client, item).await? {
                        placed += 1;
                    }
                }
                Ok::<u32, TxnError>(placed)
            }));
        }
        let mut total_orders = 0u32;
        for j in joins {
            total_orders += j.await?;
        }

        // Let in-flight commit notifications drain, then audit from one
        // consistent snapshot (retrying if a straggler was still prepared).
        hh.sleep(Duration::from_millis(5)).await;
        let (remaining, recorded) = loop {
            let mut audit = cluster.clients[0].begin_with(TxnOpts::default());
            let mut remaining = 0u64;
            let mut recorded = 0u64;
            for item in 0..ITEMS {
                let s = dec(&audit.get(&stock_key(item)).await?);
                let o = dec(&audit.get(&orders_key(item)).await?);
                assert_eq!(
                    s + o,
                    INITIAL_STOCK,
                    "item {item} lost or duplicated units (stock={s}, orders={o})"
                );
                remaining += s;
                recorded += o;
            }
            match audit.commit().await {
                Ok(_) => break (remaining, recorded),
                Err(TxnError::Aborted(_)) => continue,
                Err(e) => return Err(e),
            }
        };

        assert_eq!(recorded, total_orders as u64, "every order recorded once");
        println!(
            "placed {total_orders} orders across {ITEMS} items; {remaining} units left; \
             conservation holds on every item"
        );
        let aborts: u64 = cluster.clients.iter().map(|c| c.stats().aborts).sum();
        println!("OCC conflicts retried transparently: {aborts} aborts");
        Ok(())
    })
}
