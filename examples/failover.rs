//! Fault tolerance walkthrough: kill a shard primary mid-workload, promote
//! a backup (Algorithm 2 recovery + lease wait), and keep serving — no
//! committed data lost, in-doubt transactions resolved.
//!
//! ```sh
//! cargo run --example failover
//! ```

use std::time::Duration;

use flashsim::{value, Key, NandConfig};
use milana::client::TxnOpts;
use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana::msg::TxnError;
use semel::shard::ShardId;
use simkit::Sim;
use timesync::ClockSpec;

fn main() -> Result<(), TxnError> {
    let mut sim = Sim::new(99);
    let handle = sim.handle();
    let cluster = MilanaCluster::build(
        &handle,
        MilanaClusterConfig {
            shards: 1,
            replicas: 3,
            clients: 2,
            nand: NandConfig {
                blocks: 512,
                ..NandConfig::default()
            },
            clock: ClockSpec::ptp_software(),
            preload_keys: 100,
            ..MilanaClusterConfig::default()
        },
    );
    let hh = handle.clone();
    sim.block_on(async move {
        let client = cluster.clients[0].clone();

        // Commit a few transactions against the original primary.
        for i in 0..5u64 {
            let mut txn = client.begin_with(TxnOpts::default());
            let _ = txn.get(&Key::from(i)).await?;
            txn.put(Key::from(i), value(format!("v{i}").into_bytes()));
            txn.commit().await?;
        }
        hh.sleep(Duration::from_millis(10)).await; // backups absorb records
        println!(
            "[{}] 5 transactions committed on the original primary",
            hh.now()
        );

        // Catastrophe: the primary's node dies. Storage and the replicated
        // transaction table survive on the backups.
        let old_primary = cluster.map.borrow().group(ShardId(0)).primary;
        cluster.fail_primary(ShardId(0));
        println!("[{}] primary {old_primary} killed", hh.now());

        // The master promotes the first live backup. Recovery merges the
        // replica logs (Algorithm 2), resolves in-doubt transactions, pushes
        // the merged table, and waits out the old primary's read lease
        // before serving (the ts_latestRead guard of §4.5).
        let t0 = hh.now();
        cluster.promote_backup(ShardId(0)).await.expect("promotion");
        println!(
            "[{}] backup promoted; recovery + lease wait took {:?}",
            hh.now(),
            hh.now() - t0
        );

        // All committed data is still there...
        let mut audit = cluster.clients[1].begin_with(TxnOpts::default());
        for i in 0..5u64 {
            let v = audit.get(&Key::from(i)).await?;
            assert_eq!(&v[..], format!("v{i}").as_bytes());
        }
        audit.commit().await?;
        println!(
            "[{}] all committed values intact on the new primary",
            hh.now()
        );

        // ...and the shard accepts new transactions.
        let mut txn = client.begin_with(TxnOpts::default());
        let _ = txn.get(&Key::from(50u64)).await?;
        txn.put(Key::from(50u64), value(&b"business as usual"[..]));
        txn.commit().await?;
        println!(
            "[{}] new transactions commit against the new primary",
            hh.now()
        );
        Ok(())
    })
}
