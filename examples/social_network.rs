//! A miniature social network on MILANA — the workload the paper's intro
//! motivates (Retwis-style timelines over a transactional KV store).
//!
//! Demonstrates multi-key read-write transactions (post + fan-out), consistent
//! timeline reads via snapshot isolation, and the abort/retry loop an
//! application layer writes against OCC.
//!
//! ```sh
//! cargo run --example social_network
//! ```

use flashsim::{value, Key, NandConfig, Value};
use milana::client::{TxnClient, TxnOpts};
use milana::cluster::{MilanaCluster, MilanaClusterConfig};
use milana::msg::TxnError;
use simkit::Sim;
use timesync::ClockSpec;

/// Key layout helpers: each user has a profile key and a timeline key.
fn profile(user: u32) -> Key {
    Key::from(format!("user:{user}:profile").as_str())
}

fn timeline(user: u32) -> Key {
    Key::from(format!("user:{user}:timeline").as_str())
}

fn encode_timeline(posts: &[String]) -> Value {
    value(posts.join("\n").into_bytes())
}

fn decode_timeline(v: &Value) -> Vec<String> {
    if v.is_empty() {
        return Vec::new();
    }
    std::str::from_utf8(v)
        .expect("utf8 timeline")
        .lines()
        .map(str::to_owned)
        .collect()
}

/// Posts a message: appends to the author's timeline and every follower's,
/// atomically, retrying on OCC aborts.
async fn post(
    client: &TxnClient,
    author: u32,
    followers: &[u32],
    msg: &str,
) -> Result<(), TxnError> {
    loop {
        let mut txn = client.begin_with(TxnOpts::default());
        let mut ok = true;
        for &user in [author].iter().chain(followers) {
            let tl = timeline(user);
            let mut posts = match txn.get(&tl).await {
                Ok(v) => decode_timeline(&v),
                Err(TxnError::KeyNotFound(_)) => Vec::new(),
                Err(TxnError::Aborted(_)) => {
                    ok = false;
                    break;
                }
                Err(e) => return Err(e),
            };
            posts.push(format!("@{author}: {msg}"));
            txn.put(tl, encode_timeline(&posts));
        }
        if !ok {
            continue; // snapshot lost; retry fresh
        }
        match txn.commit().await {
            Ok(_) => return Ok(()),
            Err(TxnError::Aborted(_)) => continue, // OCC conflict: retry
            Err(e) => return Err(e),
        }
    }
}

/// Reads a user's timeline from a consistent snapshot (read-only: commits
/// locally, no validation round trips).
async fn read_timeline(client: &TxnClient, user: u32) -> Result<Vec<String>, TxnError> {
    loop {
        let mut txn = client.begin_with(TxnOpts::default());
        let posts = match txn.get(&timeline(user)).await {
            Ok(v) => decode_timeline(&v),
            Err(TxnError::KeyNotFound(_)) => Vec::new(),
            Err(TxnError::Aborted(_)) => continue,
            Err(e) => return Err(e),
        };
        match txn.commit().await {
            Ok(_) => return Ok(posts),
            Err(TxnError::Aborted(_)) => continue, // snapshot was contended
            Err(e) => return Err(e),
        }
    }
}

fn main() -> Result<(), TxnError> {
    let mut sim = Sim::new(2026);
    let handle = sim.handle();
    let cluster = MilanaCluster::build(
        &handle,
        MilanaClusterConfig {
            shards: 3,
            replicas: 3,
            clients: 3,
            nand: NandConfig {
                blocks: 512,
                ..NandConfig::default()
            },
            clock: ClockSpec::ptp_software(),
            ..MilanaClusterConfig::default()
        },
    );
    let hh = handle.clone();
    sim.block_on(async move {
        let api = &cluster.clients[0];

        // Create three users.
        for user in 0..3u32 {
            let mut txn = api.begin_with(TxnOpts::default());
            txn.put(profile(user), value(format!("user-{user}").into_bytes()));
            txn.put(timeline(user), value(&b""[..]));
            txn.commit().await?;
        }

        // Users 1 and 2 follow user 0; two clients post concurrently.
        let poster_a = cluster.clients[1].clone();
        let poster_b = cluster.clients[2].clone();
        let ja = hh.spawn(async move {
            post(
                &poster_a,
                0,
                &[1, 2],
                "precision time is a database primitive",
            )
            .await
        });
        let jb = hh.spawn(async move {
            post(&poster_b, 0, &[1, 2], "flash never overwrites in place").await
        });
        ja.await?;
        jb.await?;
        // Let the final commit notifications land before auditing.
        hh.sleep(std::time::Duration::from_millis(5)).await;

        // Every follower sees BOTH posts in the same order (atomic fan-out,
        // serializable commits).
        let t0 = read_timeline(api, 0).await?;
        let t1 = read_timeline(api, 1).await?;
        let t2 = read_timeline(api, 2).await?;
        println!("author timeline ({} posts):", t0.len());
        for p in &t0 {
            println!("  {p}");
        }
        assert_eq!(t0.len(), 2, "both concurrent posts landed");
        assert_eq!(t0, t1, "follower 1 sees the same history");
        assert_eq!(t0, t2, "follower 2 sees the same history");
        println!("all timelines consistent across shards");

        let stats: Vec<_> = cluster.clients.iter().map(|c| c.stats()).collect();
        println!("per-client stats: {stats:?}");
        Ok(())
    })
}
